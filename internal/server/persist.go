package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"unsafe"

	"uucs/internal/core"
	"uucs/internal/protocol"
	"uucs/internal/testcase"
)

// Server-side permanent storage. Like the client, the paper's server
// stores testcases and results in text files; this file round-trips the
// server's full state through a directory so restarts lose nothing.
//
// The layout is crash-safe: a compacted snapshot file written
// atomically (temp file + rename) plus an append-only journal. Every
// registration and accepted result batch is appended to the journal and
// synced to stable storage — by the group-commit writer in journal.go,
// one fsync per batch of concurrent ops — before it is acknowledged to
// the client. SaveState compacts: it records the journal's logical
// offset while holding every state lock (so the state copy provably
// covers all ops below the offset — each op is enqueued before it
// becomes visible under those locks), writes a fresh snapshot, then
// atomically replaces the journal with whatever was appended past that
// offset while the snapshot was being written (acked ops are never
// dropped). A crash at any point leaves either the old snapshot + full
// journal or the new snapshot + tail journal — and replay is idempotent
// (registrations dedup by nonce, result batches dedup by per-client
// sequence number, testcases dedup by ID), so both recover to the same
// state. A partial final journal record (crash mid-append) is detected
// and dropped.
//
// Record formats: the snapshot holds one JSON op per line. The journal
// mixes two record formats, distinguished per record by the first byte:
// '{' starts a JSON op line (every v2-era record, plus the cold ops —
// registrations, testcases — a v3 server still writes as JSON), and
// protocol.FrameMagic starts a verbatim v3 wire frame. Hot v3 result
// uploads are journaled as the exact frame bytes the client sent, so
// the append is a memcpy, the record carries its own CRC, and replay
// re-validates it with the wire decoder instead of a JSON parse. A
// fresh journal opens with a self-identifying jmeta header frame; a
// v2-era journal has no header and replays through the same scanner
// unchanged, which is the whole migration story — no rewrite, no
// conversion. Torn-tail semantics per format: a JSON record is torn if
// its final newline is missing; a binary record is torn if the file
// ends before the frame's declared length (ErrShortFrame). A complete
// binary record that fails its CRC — e.g. a corrupted header mid-file —
// is never treated as tearing: it poisons the load, because a CRC-valid
// prefix cannot be reconstructed from a corrupt length field without
// risking silently mis-parsing everything after it.

// State file names.
const (
	snapshotFile = "snapshot.txt"
	journalFile  = "journal.txt"
)

// Journal op kinds.
const (
	opMeta        = "meta"
	opTestcases   = "tc"
	opClient      = "client"
	opResults     = "results"
	opJournalMeta = "jmeta"
)

// stateVersion identifies the state file format.
const stateVersion = 2

// journalFormatVersion identifies the journal record format a jmeta
// header frame declares. Version 3 is the first to carry a header at
// all (v2 journals are pure JSON lines and headerless), so the only
// accepted value is 3; a higher one means a future build wrote records
// this build cannot be sure it parses correctly, which must poison the
// load rather than mis-parse.
const journalFormatVersion = 3

// testHookAfterSnapshot, when non-nil, runs between SaveState's
// snapshot write and its journal compaction — the window in which a
// live server keeps accepting (journaling and acking) ops that the
// snapshot's state copy predates. Tests use it to pin that race open.
var testHookAfterSnapshot func(*Server)

// journalOp is one line of the snapshot or journal.
type journalOp struct {
	Op string `json:"op"`
	// Ver is the format version (opMeta).
	Ver int `json:"ver,omitempty"`
	// ID is the client id (opClient: the registered id; opResults: the
	// uploading client).
	ID string `json:"id,omitempty"`
	// Nonce is the registration nonce (opClient).
	Nonce string `json:"nonce,omitempty"`
	// Snapshot is the machine description (opClient).
	Snapshot *protocol.Snapshot `json:"snapshot,omitempty"`
	// LastSeq is the client's highest applied batch (opClient, snapshot
	// compaction only).
	LastSeq uint64 `json:"last_seq,omitempty"`
	// Seq is the batch sequence number (opResults).
	Seq uint64 `json:"seq,omitempty"`
	// Payload holds text-encoded testcases (opTestcases) or run
	// records (opResults).
	Payload string `json:"payload,omitempty"`
}

// OpenState attaches the server to a state directory: it restores any
// existing snapshot + journal, then starts the group-commit journal
// writer so every subsequent registration and accepted result batch is
// durable before it is acknowledged. Call SaveState periodically to
// compact. JournalBatch and JournalDelay must be set before OpenState.
func (s *Server) OpenState(dir string) error {
	if dir == "" {
		return fmt.Errorf("server: empty state directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tail, err := s.loadStateDir(dir)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(filepath.Join(dir, journalFile), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	size := fi.Size()
	// Crash repair: replay tolerated a torn final record, but appending
	// after one would bury it mid-file where the next replay must treat
	// it as corruption. Seal a cleanly-applied JSON line with the
	// newline the crash ate; truncate away anything replay dropped.
	if tail.terminate {
		if _, err := f.Write([]byte{'\n'}); err != nil {
			f.Close()
			return err
		}
		size = tail.size + 1
	} else if size > tail.size {
		if err := f.Truncate(tail.size); err != nil {
			f.Close()
			return err
		}
		size = tail.size
	}
	if size == 0 {
		// Fresh journal: write the self-identifying format header. It
		// goes straight to the file, outside the journal writer, so it
		// is neither counted as an op (crash-after hooks and op counts
		// see only real mutations) nor acked to anyone.
		hdr, err := protocol.AppendFrame(nil, protocol.Message{Type: protocol.TypeJournalMeta, Ver: journalFormatVersion})
		if err != nil {
			f.Close()
			return err
		}
		if _, err := f.Write(hdr); err != nil {
			f.Close()
			return err
		}
		size = int64(len(hdr))
	}
	// Register any sealed segments already on disk so compaction can
	// drop them once a snapshot covers them. At open, every surviving
	// physical byte counts as logical (skip stays zero): logical offsets
	// are session-local, and assigning segment bases cumulatively from
	// zero keeps enq = "total logical bytes on disk" exactly as in the
	// single-file scheme.
	jpaths, err := journalFilesIn(dir)
	if err != nil {
		f.Close()
		return err
	}
	var segs []segInfo
	var segBase int64
	nextSeq := 0
	for _, p := range jpaths[:len(jpaths)-1] {
		sfi, err := os.Stat(p)
		if err != nil {
			f.Close()
			return err
		}
		seq, _ := segmentSeq(filepath.Base(p))
		segs = append(segs, segInfo{path: p, seq: seq, base: segBase, size: sfi.Size()})
		segBase += sfi.Size()
		nextSeq = seq + 1
	}
	jw := newJournalWriter(f, segBase+size, s.JournalBatch, s.JournalDelay)
	jw.dir = dir
	jw.segBytes = s.JournalSegmentBytes
	jw.segs = segs
	jw.nextSeq = nextSeq
	jw.base = segBase
	jw.fsize = size
	jw.syncCost = s.JournalSyncCost
	jw.ship = s.JournalShip
	if s.CrashAfterJournalOps > 0 {
		jw.crashAfter = s.CrashAfterJournalOps
		jw.crashFn = func() { crashNow(dir, jw.opsWritten) }
	}
	go jw.run()
	s.stateMu.Lock()
	old := s.jw
	s.jw = jw
	s.stateDir = dir
	s.stateMu.Unlock()
	if old != nil {
		return old.close()
	}
	return nil
}

// stateCopy is the coordinated cut SaveState works from.
type stateCopy struct {
	tcs     []*testcase.Testcase
	runs    []*core.Run
	clients []clientEntry
	// journalOff is the logical journal offset the copy covers; ops at
	// or past it must survive compaction. Valid only when compact.
	journalOff int64
	journaling bool
	compact    bool
	jw         *journalWriter
}

type clientEntry struct {
	id    string
	nonce string
	snap  protocol.Snapshot
	seq   uint64
}

// copyState takes every state lock in hierarchy order (regMu, tcMu,
// shards, resMu) and copies the stores. Because every mutation enqueues
// its journal op before becoming visible under these locks, the copy
// covers every journal op below the recorded offset — the invariant
// that makes compaction lossless on a live server.
func (s *Server) copyState(dir string) stateCopy {
	jw := s.journal()
	s.stateMu.Lock()
	stateDir := s.stateDir
	s.stateMu.Unlock()

	s.regMu.Lock()
	s.tcMu.RLock()
	for i := range s.shards {
		s.shards[i].lock()
	}
	s.resMu.Lock()

	c := stateCopy{
		jw:         jw,
		journaling: jw != nil,
		compact:    jw != nil && stateDir == dir,
	}
	c.tcs = make([]*testcase.Testcase, len(s.testcases))
	copy(c.tcs, s.testcases)
	c.runs = make([]*core.Run, len(s.results))
	copy(c.runs, s.results)
	nonceByID := make(map[string]string, len(s.nonces))
	for nonce, id := range s.nonces {
		nonceByID[id] = nonce
	}
	for i := range s.shards {
		sh := &s.shards[i]
		for id, snap := range sh.clients {
			c.clients = append(c.clients, clientEntry{id: id, nonce: nonceByID[id], snap: snap, seq: sh.lastSeq[id]})
		}
	}
	if c.compact {
		// Everything enqueued so far is visible in the copy above; the
		// tail past this offset is preserved by compactTo.
		c.journalOff = jw.enqueued()
	}

	s.resMu.Unlock()
	for i := numShards - 1; i >= 0; i-- {
		s.shards[i].mu.Unlock()
	}
	s.tcMu.RUnlock()
	s.regMu.Unlock()
	sort.Slice(c.clients, func(i, j int) bool { return c.clients[i].id < c.clients[j].id })
	return c
}

// SaveState writes a compacted snapshot of the server's stores to dir
// (creating it if needed) and compacts the journal. It is safe to call
// on a live server: registrations and result batches keep flowing while
// the snapshot is written, and any op journaled in that window — already
// acked to its client — is preserved in the compacted journal rather
// than truncated away, so the journal-before-ack guarantee holds across
// compaction.
func (s *Server) SaveState(dir string) error {
	if dir == "" {
		return fmt.Errorf("server: empty state directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	c := s.copyState(dir)

	err := writeFileAtomic(filepath.Join(dir, snapshotFile), func(f *os.File) error {
		w := bufio.NewWriter(f)
		emit := func(op journalOp) error {
			b, err := json.Marshal(op)
			if err != nil {
				return err
			}
			w.Write(b)
			return w.WriteByte('\n')
		}
		if err := emit(journalOp{Op: opMeta, Ver: stateVersion}); err != nil {
			return err
		}
		if len(c.tcs) > 0 {
			var b strings.Builder
			if err := testcase.EncodeAll(&b, c.tcs); err != nil {
				return err
			}
			if err := emit(journalOp{Op: opTestcases, Payload: b.String()}); err != nil {
				return err
			}
		}
		for _, cl := range c.clients {
			snap := cl.snap
			if err := emit(journalOp{Op: opClient, ID: cl.id, Nonce: cl.nonce, Snapshot: &snap, LastSeq: cl.seq}); err != nil {
				return err
			}
		}
		if len(c.runs) > 0 {
			var b strings.Builder
			if err := core.EncodeRuns(&b, c.runs, true); err != nil {
				return err
			}
			if err := emit(journalOp{Op: opResults, Payload: b.String()}); err != nil {
				return err
			}
		}
		return w.Flush()
	})
	if err != nil {
		return err
	}
	if testHookAfterSnapshot != nil {
		testHookAfterSnapshot(s)
	}

	if c.compact {
		// The snapshot covers the journal below c.journalOff. Ops
		// appended past it while the snapshot was being written are
		// journaled and acked but in neither the snapshot nor (after a
		// blind truncate) the journal — so carry that tail into the
		// compacted journal. A crash before the swap is harmless: old
		// prefix + tail replay dedups. The barrier flushes the queue so
		// the on-disk file is complete through the offset.
		if err := c.jw.barrier(); err != nil {
			return err
		}
		return c.jw.compactTo(c.journalOff, journalPathIn(dir))
	}
	// Not journaling into dir (detached server, or a snapshot exported
	// to a foreign directory): leave any live journal alone, but empty
	// dir's own journal file — and delete any stale sealed segments —
	// so old journal bytes are not replayed on top of the fresh
	// snapshot.
	if jpaths, err := journalFilesIn(dir); err == nil {
		for _, p := range jpaths[:len(jpaths)-1] {
			if err := os.Remove(p); err != nil {
				return err
			}
		}
	}
	if c.journaling || fileExists(journalPathIn(dir)) {
		return os.WriteFile(journalPathIn(dir), nil, 0o644)
	}
	return nil
}

// LoadState restores a server's stores from dir: the snapshot first,
// then the journal — sealed segments in seal order, then the active
// file — replayed on top. Record decode runs on ReplayWorkers
// goroutines with per-shard apply queues (replay.go); the restored
// stores are bit-identical to a serial replay at any worker count.
// Missing files are treated as empty stores, so a fresh directory
// loads cleanly. A truncated final record in the active journal — the
// signature of a crash mid-append — is dropped; corruption anywhere
// else (including a torn tail inside a sealed segment, or a gap in the
// segment sequence) is an error.
func (s *Server) LoadState(dir string) error {
	if dir == "" {
		return fmt.Errorf("server: empty state directory")
	}
	_, err := s.loadStateDir(dir)
	return err
}

// scanOpsFile parses one state file record by record, calling fn per
// op. A missing file is an empty file. Each record's format is
// identified by its first byte: a verbatim v3 wire frame
// (protocol.FrameMagic) or a newline-terminated JSON op line. Binary
// record payloads are handed to fn as borrowed views of the file
// buffer — the buffer is immutable and garbage-collected normally, so
// the views stay valid even if retained; replay never copies or
// re-encodes a journaled frame.
//
// tolerateTail drops a torn final record: a JSON line with no
// terminating newline (plus any parse/fn error on it), or a binary
// frame the file ends inside (ErrShortFrame). A complete binary frame
// that fails its CRC or its fn is corruption at any position and
// poisons the scan — it cannot be tearing, because tearing cannot
// manufacture a valid CRC trailer.
func scanOpsFile(path string, tolerateTail bool, fn func(journalOp) error) error {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	base := filepath.Base(path)
	rec := 0
	pos := 0
	var f protocol.Frame
	for pos < len(data) {
		switch data[pos] {
		case '\n', '\r', ' ', '\t':
			pos++ // blank separators between JSON lines
			continue
		}
		rec++
		if data[pos] == protocol.FrameMagic {
			n, err := protocol.DecodeFrame(data[pos:], &f)
			if err != nil {
				if tolerateTail && errors.Is(err, protocol.ErrShortFrame) {
					return nil // torn tail: crash mid-append
				}
				return fmt.Errorf("server: %s record %d (offset %d): %w", base, rec, pos, err)
			}
			op, err := frameOp(&f)
			if err == nil {
				err = fn(op)
			}
			if err != nil {
				return fmt.Errorf("server: %s record %d (offset %d): %w", base, rec, pos, err)
			}
			pos += n
			continue
		}
		nl := bytes.IndexByte(data[pos:], '\n')
		torn := nl < 0
		var line []byte
		if torn {
			line = data[pos:]
			pos = len(data)
		} else {
			line = data[pos : pos+nl]
			pos += nl + 1
		}
		var op journalOp
		if err := json.Unmarshal(line, &op); err != nil {
			if tolerateTail && torn {
				return nil
			}
			return fmt.Errorf("server: %s record %d: %w", base, rec, err)
		}
		if err := fn(op); err != nil {
			if tolerateTail && torn {
				return nil
			}
			return fmt.Errorf("server: %s record %d: %w", base, rec, err)
		}
	}
	return nil
}

// frameOp converts a journaled wire frame into its journalOp view. The
// payload borrows the frame's bytes without copying.
func frameOp(f *protocol.Frame) (journalOp, error) {
	switch f.Type {
	case protocol.TypeJournalMeta:
		return journalOp{Op: opJournalMeta, Ver: f.Ver}, nil
	case protocol.TypeResults:
		return journalOp{Op: opResults, ID: string(f.ClientID), Seq: f.Seq, Payload: borrowString(f.Payload)}, nil
	default:
		return journalOp{}, fmt.Errorf("unexpected %q frame in journal", f.Type)
	}
}

// borrowString returns a string view of b without copying. Safe here
// because every caller passes views of an immutable, GC-managed file
// buffer.
func borrowString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

// Exported op-kind names for StateOp.Kind (the on-disk op tags).
const (
	OpKindMeta        = opMeta
	OpKindTestcases   = opTestcases
	OpKindClient      = opClient
	OpKindResults     = opResults
	OpKindJournalMeta = opJournalMeta
)

// StateOp is the exported view of one journal/snapshot op, for
// consumers that read state files without being a server — the cluster
// merge walks per-node journals through it.
type StateOp struct {
	// Kind is the op tag (OpKind*).
	Kind string
	// Ver is the state format version (OpKindMeta).
	Ver int
	// ID is the client id (OpKindClient: the registered id;
	// OpKindResults: the uploading client, empty for a compacted
	// snapshot aggregate).
	ID string
	// Nonce is the registration nonce (OpKindClient).
	Nonce string
	// LastSeq is the client's highest batch folded into a compacted
	// snapshot (OpKindClient).
	LastSeq uint64
	// Seq is the upload batch sequence number (OpKindResults; 0 for
	// unsequenced or compacted payloads).
	Seq uint64
	// Payload holds text-encoded testcases or run records.
	Payload string
}

// ScanStateOps parses one state file (a journal or a snapshot), calling
// fn for every op in file order. tolerateTail drops a torn final line —
// pass true for journals (a crash mid-append tears them), false for
// snapshots (written atomically). A missing file scans as empty. It
// validates op meta versions like a state load would.
func ScanStateOps(path string, tolerateTail bool, fn func(StateOp) error) error {
	return scanOpsFile(path, tolerateTail, func(op journalOp) error {
		if op.Op == opMeta && op.Ver != stateVersion {
			return fmt.Errorf("unsupported state version %d", op.Ver)
		}
		if op.Op == opJournalMeta && op.Ver != journalFormatVersion {
			return fmt.Errorf("unsupported journal format version %d", op.Ver)
		}
		return fn(StateOp{
			Kind: op.Op, Ver: op.Ver, ID: op.ID, Nonce: op.Nonce,
			LastSeq: op.LastSeq, Seq: op.Seq, Payload: op.Payload,
		})
	})
}

// StateFilePaths returns the snapshot and active journal paths of a
// state directory in replay order (snapshot first). Either file may be
// absent; ScanStateOps treats a missing file as empty. Directories
// written with journal segmentation enabled hold sealed segment files
// between the two — use StateFiles for the complete replay-ordered
// list.
func StateFilePaths(dir string) (snapshot, journal string) {
	return filepath.Join(dir, snapshotFile), journalPathIn(dir)
}

// applyOp replays one journal op into the in-memory stores,
// deduplicating so replay is idempotent.
func (s *Server) applyOp(op journalOp) error {
	switch op.Op {
	case opMeta:
		if op.Ver != stateVersion {
			return fmt.Errorf("unsupported state version %d", op.Ver)
		}
		return nil
	case opJournalMeta:
		// The journal format header. A replica journal can carry several
		// (one per bootstrap segment shipped after a primary restart);
		// each just re-declares the format.
		if op.Ver != journalFormatVersion {
			return fmt.Errorf("unsupported journal format version %d", op.Ver)
		}
		return nil
	case opTestcases:
		tcs, err := testcase.DecodeAll(strings.NewReader(op.Payload))
		if err != nil {
			return err
		}
		return s.addTestcases(tcs, false)
	case opClient:
		return s.applyClientShard(&op)
	case opResults:
		runs, err := core.DecodeRuns(strings.NewReader(op.Payload))
		if err != nil {
			return err
		}
		keep, err := s.applyResultsShard(&op)
		if err != nil || !keep {
			return err
		}
		s.resMu.Lock()
		s.results = append(s.results, runs...)
		s.resMu.Unlock()
		return nil
	default:
		return fmt.Errorf("unknown op %q", op.Op)
	}
}

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

func writeFileAtomic(path string, fill func(*os.File) error) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := fill(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
