package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"uucs/internal/core"
	"uucs/internal/protocol"
	"uucs/internal/testcase"
)

// Server-side permanent storage. Like the client, the paper's server
// stores testcases and results in text files; this file round-trips the
// server's full state (testcase store, result store, client registry)
// through a directory so restarts lose nothing.

// State file names.
const (
	serverTestcases = "testcases.txt"
	serverResults   = "results.txt"
	serverClients   = "clients.txt"
)

// clientRecord is one line of the client registry.
type clientRecord struct {
	ID       string            `json:"id"`
	Snapshot protocol.Snapshot `json:"snapshot"`
}

// SaveState writes the server's stores to dir (creating it if needed).
func (s *Server) SaveState(dir string) error {
	if dir == "" {
		return fmt.Errorf("server: empty state directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	s.mu.Lock()
	tcs := make([]*testcase.Testcase, len(s.testcases))
	copy(tcs, s.testcases)
	runs := make([]*core.Run, len(s.results))
	copy(runs, s.results)
	clients := make([]clientRecord, 0, len(s.clients))
	for id, snap := range s.clients {
		clients = append(clients, clientRecord{ID: id, Snapshot: snap})
	}
	s.mu.Unlock()

	if err := writeFileAtomic(filepath.Join(dir, serverTestcases), func(f *os.File) error {
		return testcase.EncodeAll(f, tcs)
	}); err != nil {
		return err
	}
	if err := writeFileAtomic(filepath.Join(dir, serverResults), func(f *os.File) error {
		return core.EncodeRuns(f, runs, true)
	}); err != nil {
		return err
	}
	return writeFileAtomic(filepath.Join(dir, serverClients), func(f *os.File) error {
		w := bufio.NewWriter(f)
		// The next-id header is kept for registry-format compatibility;
		// ids now derive from snapshot content, so only the count is
		// recorded.
		fmt.Fprintf(w, "# next-id %d\n", len(clients))
		for _, c := range clients {
			b, err := json.Marshal(c)
			if err != nil {
				return err
			}
			w.Write(b)
			w.WriteByte('\n')
		}
		return w.Flush()
	})
}

// LoadState restores a server's stores from dir. Missing files are
// treated as empty stores, so a fresh directory loads cleanly.
func (s *Server) LoadState(dir string) error {
	if dir == "" {
		return fmt.Errorf("server: empty state directory")
	}
	tcs, err := loadTestcases(filepath.Join(dir, serverTestcases))
	if err != nil {
		return err
	}
	runs, err := loadRuns(filepath.Join(dir, serverResults))
	if err != nil {
		return err
	}
	clients, _, err := loadClients(filepath.Join(dir, serverClients))
	if err != nil {
		return err
	}
	if err := s.AddTestcases(tcs...); err != nil {
		return err
	}
	s.mu.Lock()
	s.results = append(s.results, runs...)
	for _, c := range clients {
		s.clients[c.ID] = c.Snapshot
	}
	s.mu.Unlock()
	return nil
}

func loadTestcases(path string) ([]*testcase.Testcase, error) {
	f, err := os.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return testcase.DecodeAll(f)
}

func loadRuns(path string) ([]*core.Run, error) {
	f, err := os.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return core.DecodeRuns(f)
}

func loadClients(path string) ([]clientRecord, int, error) {
	f, err := os.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	var out []clientRecord
	nextID := 0
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		if n, err := fmt.Sscanf(text, "# next-id %d", &nextID); n == 1 && err == nil {
			continue
		}
		var c clientRecord
		if err := json.Unmarshal([]byte(text), &c); err != nil {
			return nil, 0, fmt.Errorf("server: clients line %d: %w", line, err)
		}
		if c.ID == "" {
			return nil, 0, fmt.Errorf("server: clients line %d: empty id", line)
		}
		out = append(out, c)
	}
	return out, nextID, sc.Err()
}

func writeFileAtomic(path string, fill func(*os.File) error) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := fill(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
