package server

import (
	"fmt"
	"os"
	"runtime/pprof"
	"testing"
	"time"

	"uucs/internal/core"
	"uucs/internal/testcase"
)

// TestColdPathExperiment is the measurement driver behind EXPERIMENTS.md
// "Fast cold paths": it builds a multi-segment journal of roughly
// UUCS_COLDPATH_MB (default 64) megabytes, then times LoadState at
// several worker counts, verifying bit-identity between them. Run it
// explicitly:
//
//	UUCS_COLDPATH_EXPERIMENT=1 go test ./internal/server -run TestColdPathExperiment -v -timeout 30m
//
// Set UUCS_COLDPATH_CPUPROFILE to also capture a CPU profile of one
// serial replay (the decode share of that profile is the parallelizable
// fraction that predicts multi-core speedup).
func TestColdPathExperiment(t *testing.T) {
	if os.Getenv("UUCS_COLDPATH_EXPERIMENT") == "" {
		t.Skip("set UUCS_COLDPATH_EXPERIMENT=1 to run the cold-path measurement driver")
	}
	targetMB := 64
	if v := os.Getenv("UUCS_COLDPATH_MB"); v != "" {
		fmt.Sscanf(v, "%d", &targetMB)
	}
	dir := t.TempDir()

	// Build: one registered client fleet, large result batches, 8MB
	// segments, until the journal holds ~targetMB of records.
	build := time.Now()
	s := New(1)
	s.JournalSegmentBytes = 8 << 20
	if err := s.OpenState(dir); err != nil {
		t.Fatal(err)
	}
	const nClients = 16
	ids := make([]string, nClients)
	for c := 0; c < nClients; c++ {
		id, err := s.register(testSnapshot(), fmt.Sprintf("coldpath-nonce-%d", c))
		if err != nil {
			t.Fatal(err)
		}
		ids[c] = id
	}
	var written int64
	var seq uint64
	for written < int64(targetMB)<<20 {
		seq++
		for c := 0; c < nClients; c++ {
			runs := make([]*core.Run, 128)
			for i := range runs {
				r := testRun()
				r.UserID = c
				r.Offset = float64(seq)*1000 + float64(i)
				r.Levels = map[testcase.Resource]float64{testcase.CPU: float64(i) / 128}
				runs[i] = r
			}
			payload := encodeRuns(t, runs)
			if _, err := s.addResults(ids[c], seq, payload, runs); err != nil {
				t.Fatal(err)
			}
			written += int64(len(payload))
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segs := segmentFiles(t, dir)
	t.Logf("built %d MB of records across %d sealed segments + active journal in %v",
		written>>20, len(segs), time.Since(build).Round(time.Millisecond))

	var baseline string
	for _, workers := range []int{1, 1, 2, 4, 8} {
		r := New(1)
		r.ReplayWorkers = workers
		if prof := os.Getenv("UUCS_COLDPATH_CPUPROFILE"); prof != "" && workers == 1 {
			f, err := os.Create(prof)
			if err != nil {
				t.Fatal(err)
			}
			pprof.StartCPUProfile(f)
			defer f.Close()
		}
		start := time.Now()
		if err := r.LoadState(dir); err != nil {
			t.Fatal(err)
		}
		elapsed := time.Since(start)
		if os.Getenv("UUCS_COLDPATH_CPUPROFILE") != "" && workers == 1 {
			pprof.StopCPUProfile()
		}
		st := r.Stats()
		fp := stateFingerprint(t, r)
		if baseline == "" {
			baseline = fp
		} else if fp != baseline {
			t.Fatalf("workers=%d: restored state diverges from serial", workers)
		}
		t.Logf("LoadState workers=%d: %v wall (%d records, %d files, %d MB, %.1f MB/s)",
			workers, elapsed.Round(time.Millisecond), st.ReplayRecords, st.ReplayFiles,
			st.ReplayBytes>>20, float64(st.ReplayBytes)/1e6/elapsed.Seconds())
	}
}
