package server

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"uucs/internal/telemetry"
)

// USE-method telemetry for the ingest path. Stats() is the flat
// counter dump; Telemetry() organizes the same collectors along the
// utilization / saturation / errors axes, normalizes each reading into
// a comparable 0–1 pressure, and derives the health score and the
// saturated-resource verdict. The mapping (resource → metric →
// collector) is documented in DESIGN.md's Observability section.

// Telemetry assembles the USE snapshot of the ingest path. It is a
// cold-path read: every underlying collector is atomic, so taking a
// snapshot never blocks an ingest operation.
func (s *Server) Telemetry() *telemetry.Snapshot {
	now := time.Now()
	snap := &telemetry.Snapshot{Taken: now, Uptime: now.Sub(s.start), Node: s.NodeID}
	st := s.Stats()

	// Utilization: shard lock contention and spread.
	var locks, waits, maxLocks uint64
	for i := range st.ShardLocks {
		locks += st.ShardLocks[i]
		waits += st.ShardWaits[i]
		if st.ShardLocks[i] > maxLocks {
			maxLocks = st.ShardLocks[i]
		}
	}
	waitRatio := telemetry.Ratio(float64(waits), float64(locks))
	snap.Add(telemetry.Sample{
		Resource: "shard-locks", Axis: telemetry.Utilization,
		Metric: "contended acquisitions", Value: waitRatio, Unit: "frac",
		Pressure: waitRatio,
		Detail:   fmt.Sprintf("%d waits / %d acquires over %d shards", waits, locks, numShards),
	})
	if locks > 0 {
		mean := float64(locks) / float64(numShards)
		snap.Add(telemetry.Sample{
			Resource: "shard-balance", Axis: telemetry.Utilization,
			Metric: "hottest/mean acquisitions", Value: telemetry.Ratio(float64(maxLocks), mean), Unit: "x",
			Detail: fmt.Sprintf("hottest shard %d acquisitions, mean %.1f", maxLocks, mean),
		})
	}

	// Utilization: negotiated wire-protocol mix. Value is the v3 share
	// of ingested messages — during a rollout it climbs from 0 to 1 as
	// the fleet negotiates up; a stall means old clients are pinned.
	if total := st.V2Msgs + st.V3Msgs; total > 0 {
		v3share := telemetry.Ratio(float64(st.V3Msgs), float64(total))
		snap.Add(telemetry.Sample{
			Resource: "protocol-mix", Axis: telemetry.Utilization,
			Metric: "v3 message share", Value: v3share, Unit: "frac",
			Detail: fmt.Sprintf("%d v2 / %d v3 messages", st.V2Msgs, st.V3Msgs),
		})
	}

	jw := s.journal()
	if jw != nil {
		uptime := float64(snap.Uptime)
		busy := telemetry.Ratio(float64(jw.flushBusy.Load()), uptime)
		q := jw.flushLat.Quantiles(0.50, 0.90, 0.99)
		snap.Add(telemetry.Sample{
			Resource: "journal-fsync", Axis: telemetry.Utilization,
			Metric: "flush busy fraction", Value: busy, Unit: "frac",
			Pressure: busy,
			Detail:   fmt.Sprintf("%d flushes, %v busy", st.JournalFsyncs, time.Duration(jw.flushBusy.Load()).Round(time.Millisecond)),
		})
		snap.Add(telemetry.Sample{
			Resource: "journal-fsync", Axis: telemetry.Saturation,
			Metric: "flush latency p50", Value: float64(q[0]), Unit: "ns",
			Detail: fmt.Sprintf("p90 %v, p99 %v", time.Duration(q[1]).Round(time.Microsecond), time.Duration(q[2]).Round(time.Microsecond)),
		})

		// Saturation: queue depth behind the writer, group-commit batch
		// occupancy, and the ack backlog.
		depth, depthMax := jw.queueDepth.Load(), jw.queueDepth.Max()
		snap.Add(telemetry.Sample{
			Resource: "journal-queue", Axis: telemetry.Saturation,
			Metric: "peak depth", Value: float64(depthMax), Unit: "ops",
			Pressure: telemetry.Ratio(float64(depthMax), float64(jw.maxBatch)),
			Detail:   fmt.Sprintf("now %d, peak %d, batch cap %d", depth, depthMax, jw.maxBatch),
		})
		occupancy := telemetry.Ratio(st.MeanBatch, float64(jw.maxBatch))
		snap.Add(telemetry.Sample{
			Resource: "journal-batch", Axis: telemetry.Saturation,
			Metric: "group-commit occupancy", Value: occupancy, Unit: "frac",
			Pressure: occupancy,
			Detail:   fmt.Sprintf("mean %.1f ops/fsync of cap %d", st.MeanBatch, jw.maxBatch),
		})
		backlog, backlogMax := jw.ackBacklog.Load(), jw.ackBacklog.Max()
		snap.Add(telemetry.Sample{
			Resource: "ack-backlog", Axis: telemetry.Saturation,
			Metric: "peak unacked ops", Value: float64(backlogMax), Unit: "ops",
			Pressure: telemetry.Ratio(float64(backlogMax), float64(2*jw.maxBatch)),
			Detail:   fmt.Sprintf("now %d, peak %d", backlog, backlogMax),
		})
		// Cold-path health: segment churn. Rotation keeps the next
		// restart's replay (and compaction cost) bounded; the sample is
		// informational, so it carries no pressure.
		if st.SegmentsSealed > 0 || jw.segBytes > 0 {
			snap.Add(telemetry.Sample{
				Resource: "journal-segments", Axis: telemetry.Utilization,
				Metric: "segments sealed", Value: float64(st.SegmentsSealed), Unit: "segs",
				Detail: fmt.Sprintf("%d on disk, rotate at %d bytes", jw.segCount(), jw.segBytes),
			})
		}
	}

	// Cold-path health: how long the last restart replay took and how
	// much it covered. A growing replayLat next to healthy ingest means
	// the next crash's recovery window is growing — the signal to lower
	// the snapshot interval or the segment size.
	if st.ReplayNanos > 0 {
		snap.Add(telemetry.Sample{
			Resource: "replay", Axis: telemetry.Saturation,
			Metric: "last replay latency", Value: float64(st.ReplayNanos), Unit: "ns",
			Detail: fmt.Sprintf("%d records over %d files (%d bytes) in %v",
				st.ReplayRecords, st.ReplayFiles, st.ReplayBytes,
				time.Duration(st.ReplayNanos).Round(time.Microsecond)),
		})
	}

	// Errors: dedup churn, wire rejects, journal poison.
	dupRatio := telemetry.Ratio(float64(st.DupBatches), float64(st.Batches+st.DupBatches))
	snap.Add(telemetry.Sample{
		Resource: "dedup", Axis: telemetry.Errors,
		Metric: "duplicate batches", Value: float64(st.DupBatches), Unit: "batches",
		Pressure: dupRatio,
		Detail:   fmt.Sprintf("%.1f%% of %d uploads retried", 100*dupRatio, st.Batches+st.DupBatches),
	})
	accepted := st.Batches + st.Registrations
	rejRatio := telemetry.Ratio(float64(st.Rejects), float64(st.Rejects+accepted))
	snap.Add(telemetry.Sample{
		Resource: "wire-rejects", Axis: telemetry.Errors,
		Metric: "rejected requests", Value: float64(st.Rejects), Unit: "reqs",
		Pressure: rejRatio,
		Detail:   fmt.Sprintf("decode/validation errors vs %d accepted", accepted),
	})
	if jw != nil {
		poison := 0.0
		detail := "journal healthy"
		if err := jw.failed(); err != nil {
			poison = 1
			detail = err.Error()
		}
		snap.Add(telemetry.Sample{
			Resource: "journal-poison", Axis: telemetry.Errors,
			Metric: "writer poisoned", Value: poison,
			Pressure: poison, Detail: detail,
		})
	}

	snap.Finalize()
	return snap
}

// crashMarkerFile is dropped into the state directory by the
// -crash-after hook immediately before the SIGKILL, so the e2e harness
// can distinguish the intended mid-fsync crash from an accidental one.
const crashMarkerFile = "crash.marker"

// crashNow is the -crash-after hook body: drop the marker, then
// SIGKILL our own process — no deferred handlers, no journal close, no
// goodbye on any connection, exactly like a power cut at the process
// level. It never returns.
func crashNow(stateDir string, opsWritten uint64) {
	msg := fmt.Sprintf("killed between journal write and fsync after %d ops\n", opsWritten)
	_ = os.WriteFile(filepath.Join(stateDir, crashMarkerFile), []byte(msg), 0o644)
	p, err := os.FindProcess(os.Getpid())
	if err == nil {
		_ = p.Kill()
	}
	select {} // the kill is asynchronous; never reach the fsync
}
