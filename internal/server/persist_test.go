package server

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"uucs/internal/core"
	"uucs/internal/stats"
	"uucs/internal/testcase"
)

func testRun() *core.Run {
	return &core.Run{
		TestcaseID: "p-00001", Task: testcase.IE, UserID: 3,
		Terminated: core.Discomfort, Offset: 55,
		PrimaryResource: testcase.Disk,
		Levels:          map[testcase.Resource]float64{testcase.Disk: 2.5},
		LastFive:        map[testcase.Resource][]float64{testcase.Disk: {2.1, 2.2, 2.3, 2.4, 2.5}},
	}
}

func encodeRuns(t *testing.T, runs []*core.Run) string {
	t.Helper()
	var b strings.Builder
	if err := core.EncodeRuns(&b, runs, true); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestSaveLoadStateRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := New(1)
	tcs, err := testcase.Generate("p", testcase.GeneratorConfig{
		Count: 15, Rate: 1, Duration: 20,
		BlankFraction: 0.1, QueueFraction: 0.4, MaxCPU: 10, MaxDisk: 7,
	}, stats.NewStream(9))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddTestcases(tcs...); err != nil {
		t.Fatal(err)
	}
	id, err := s.register(testSnapshot(), "nonce-1")
	if err != nil {
		t.Fatal(err)
	}
	runs := []*core.Run{testRun()}
	if _, err := s.addResults(id, 1, encodeRuns(t, runs), runs); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveState(dir); err != nil {
		t.Fatal(err)
	}

	restored := New(2)
	if err := restored.LoadState(dir); err != nil {
		t.Fatal(err)
	}
	if restored.TestcaseCount() != 15 {
		t.Errorf("testcases = %d", restored.TestcaseCount())
	}
	got := restored.Results()
	if len(got) != 1 || got[0].Offset != 55 || got[0].LastFive[testcase.Disk][4] != 2.5 {
		t.Errorf("results = %+v", got)
	}
	snap, ok := restored.Snapshot(id)
	if !ok || snap.Hostname != "host" {
		t.Errorf("client registry lost: %v %v", snap, ok)
	}
	// New registrations after a restore must not collide with old ids.
	id2, err := restored.register(testSnapshot(), "")
	if err != nil {
		t.Fatal(err)
	}
	if id2 == id {
		t.Error("restored server reissued an existing id")
	}
	// The nonce map must survive a restore: a retried registration with
	// the original nonce gets the original id back.
	id3, err := restored.register(testSnapshot(), "nonce-1")
	if err != nil {
		t.Fatal(err)
	}
	if id3 != id {
		t.Errorf("retried registration after restore: got %s, want %s", id3, id)
	}
	// So must the sequence high-water mark: the acked batch is a dup.
	dup, err := restored.addResults(id, 1, encodeRuns(t, runs), runs)
	if err != nil {
		t.Fatal(err)
	}
	if !dup {
		t.Error("restored server re-applied an acked batch")
	}
	if len(restored.Results()) != 1 {
		t.Errorf("results after dup = %d", len(restored.Results()))
	}
}

func TestLoadStateEmptyDir(t *testing.T) {
	s := New(1)
	if err := s.LoadState(t.TempDir()); err != nil {
		t.Fatalf("fresh dir: %v", err)
	}
	if s.TestcaseCount() != 0 || len(s.Results()) != 0 {
		t.Error("fresh dir produced state")
	}
	if err := s.LoadState(""); err == nil {
		t.Error("empty dir path accepted")
	}
	if err := s.SaveState(""); err == nil {
		t.Error("empty save path accepted")
	}
}

func TestLoadStateCorruptFiles(t *testing.T) {
	// Snapshots are written atomically, so corruption anywhere in one is
	// an error.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, snapshotFile), []byte("not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := New(1).LoadState(dir); err == nil {
		t.Error("corrupt snapshot accepted")
	}

	// A corrupt journal line that is NOT the final line is an error too —
	// only a torn tail is explainable by a crash mid-append.
	dir2 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir2, journalFile), []byte("bogus\n{\"op\":\"meta\",\"ver\":2}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := New(1).LoadState(dir2); err == nil {
		t.Error("corrupt mid-journal line accepted")
	}

	// A client op without an id is rejected even in a snapshot.
	dir3 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir3, snapshotFile), []byte(`{"op":"client","snapshot":{}}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := New(1).LoadState(dir3); err == nil {
		t.Error("empty client id accepted")
	}

	// An unknown state version is rejected.
	dir4 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir4, snapshotFile), []byte(`{"op":"meta","ver":99}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := New(1).LoadState(dir4); err == nil {
		t.Error("future state version accepted")
	}
}

func TestLoadStateToleratesTornJournalTail(t *testing.T) {
	dir := t.TempDir()
	s := New(1)
	if err := s.OpenState(dir); err != nil {
		t.Fatal(err)
	}
	id, err := s.register(testSnapshot(), "n1")
	if err != nil {
		t.Fatal(err)
	}
	runs := []*core.Run{testRun()}
	if _, err := s.addResults(id, 1, encodeRuns(t, runs), runs); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: tear the final journal line.
	path := filepath.Join(dir, journalFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, []byte(`{"op":"results","id":"`+id+`","seq`)...), 0o644); err != nil {
		t.Fatal(err)
	}
	restored := New(1)
	if err := restored.LoadState(dir); err != nil {
		t.Fatalf("torn journal tail rejected: %v", err)
	}
	if restored.ClientCount() != 1 || len(restored.Results()) != 1 {
		t.Errorf("restored clients=%d results=%d", restored.ClientCount(), len(restored.Results()))
	}
}

func TestOpenStateJournalsBeforeAck(t *testing.T) {
	dir := t.TempDir()
	s := New(1)
	if err := s.OpenState(dir); err != nil {
		t.Fatal(err)
	}
	id, err := s.register(testSnapshot(), "n1")
	if err != nil {
		t.Fatal(err)
	}
	runs := []*core.Run{testRun()}
	if _, err := s.addResults(id, 1, encodeRuns(t, runs), runs); err != nil {
		t.Fatal(err)
	}
	// Crash without SaveState: the journal alone must restore everything.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	restored := New(1)
	if err := restored.LoadState(dir); err != nil {
		t.Fatal(err)
	}
	if restored.ClientCount() != 1 {
		t.Errorf("clients = %d", restored.ClientCount())
	}
	if got := restored.Results(); len(got) != 1 || got[0].Offset != 55 {
		t.Errorf("results = %+v", got)
	}
}

func TestSaveStateCompactsJournal(t *testing.T) {
	dir := t.TempDir()
	s := New(1)
	if err := s.OpenState(dir); err != nil {
		t.Fatal(err)
	}
	id, err := s.register(testSnapshot(), "n1")
	if err != nil {
		t.Fatal(err)
	}
	runs := []*core.Run{testRun()}
	if _, err := s.addResults(id, 1, encodeRuns(t, runs), runs); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveState(dir); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(filepath.Join(dir, journalFile))
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != 0 {
		t.Errorf("journal not truncated after compaction: %d bytes", info.Size())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	restored := New(1)
	if err := restored.LoadState(dir); err != nil {
		t.Fatal(err)
	}
	if restored.ClientCount() != 1 || len(restored.Results()) != 1 {
		t.Errorf("restored clients=%d results=%d", restored.ClientCount(), len(restored.Results()))
	}
}

// TestSaveStateKeepsOpsAckedDuringSnapshot pins open the race between
// a live server's intake and compaction: ops journaled (and acked to
// their clients) while the snapshot file is being written are covered
// by neither the snapshot's state copy nor — if compaction blindly
// truncated — the journal. They must survive in the compacted journal
// and restore after a crash, or an acked batch would be silently lost.
func TestSaveStateKeepsOpsAckedDuringSnapshot(t *testing.T) {
	dir := t.TempDir()
	s := New(1)
	if err := s.OpenState(dir); err != nil {
		t.Fatal(err)
	}
	id, err := s.register(testSnapshot(), "n1")
	if err != nil {
		t.Fatal(err)
	}
	runs := []*core.Run{testRun()}
	if _, err := s.addResults(id, 1, encodeRuns(t, runs), runs); err != nil {
		t.Fatal(err)
	}
	raced := testRun()
	raced.Offset = 99
	racedRuns := []*core.Run{raced}
	defer func() { testHookAfterSnapshot = nil }()
	testHookAfterSnapshot = func(srv *Server) {
		// A client upload and a registration land after the state copy
		// but before compaction: journaled, acked, not in the snapshot.
		if _, err := srv.addResults(id, 2, encodeRuns(t, racedRuns), racedRuns); err != nil {
			t.Error(err)
		}
		late := testSnapshot()
		late.Hostname = "late-host"
		if _, err := srv.register(late, "n-late"); err != nil {
			t.Error(err)
		}
	}
	if err := s.SaveState(dir); err != nil {
		t.Fatal(err)
	}
	testHookAfterSnapshot = nil
	// The compacted journal holds exactly the raced ops, nothing stale.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	restored := New(1)
	if err := restored.LoadState(dir); err != nil {
		t.Fatal(err)
	}
	if restored.ClientCount() != 2 {
		t.Errorf("clients = %d, want 2 (raced registration lost)", restored.ClientCount())
	}
	got := restored.Results()
	if len(got) != 2 {
		t.Fatalf("results = %d, want 2 (raced acked batch lost)", len(got))
	}
	offsets := map[float64]bool{got[0].Offset: true, got[1].Offset: true}
	if !offsets[55] || !offsets[99] {
		t.Errorf("restored offsets = %v, want {55, 99}", offsets)
	}
	// The raced batch's sequence number must survive too: a retry after
	// restart is still a dup, not a double count.
	dup, err := restored.addResults(id, 2, encodeRuns(t, racedRuns), racedRuns)
	if err != nil {
		t.Fatal(err)
	}
	if !dup {
		t.Error("restored server re-applied the raced acked batch")
	}
	// A retried registration with the raced nonce gets its id back.
	late := testSnapshot()
	late.Hostname = "late-host"
	if _, err := restored.register(late, "n-late"); err != nil {
		t.Fatal(err)
	}
	if restored.ClientCount() != 2 {
		t.Errorf("raced nonce not restored: clients = %d", restored.ClientCount())
	}
}

func TestStatePersistsAcrossServeCycle(t *testing.T) {
	dir := t.TempDir()
	s, addr := startServer(t, 10)
	conn := dialT(t, addr)
	register(t, conn)
	if err := s.SaveState(dir); err != nil {
		t.Fatal(err)
	}
	s2 := New(7)
	if err := s2.LoadState(dir); err != nil {
		t.Fatal(err)
	}
	if s2.ClientCount() != 1 || s2.TestcaseCount() != 10 {
		t.Errorf("restored: clients=%d testcases=%d", s2.ClientCount(), s2.TestcaseCount())
	}
}
