package server

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"uucs/internal/core"
	"uucs/internal/protocol"
	"uucs/internal/stats"
	"uucs/internal/testcase"
)

func testRun() *core.Run {
	return &core.Run{
		TestcaseID: "p-00001", Task: testcase.IE, UserID: 3,
		Terminated: core.Discomfort, Offset: 55,
		PrimaryResource: testcase.Disk,
		Levels:          map[testcase.Resource]float64{testcase.Disk: 2.5},
		LastFive:        map[testcase.Resource][]float64{testcase.Disk: {2.1, 2.2, 2.3, 2.4, 2.5}},
	}
}

func encodeRuns(t *testing.T, runs []*core.Run) string {
	t.Helper()
	var b strings.Builder
	if err := core.EncodeRuns(&b, runs, true); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestSaveLoadStateRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := New(1)
	tcs, err := testcase.Generate("p", testcase.GeneratorConfig{
		Count: 15, Rate: 1, Duration: 20,
		BlankFraction: 0.1, QueueFraction: 0.4, MaxCPU: 10, MaxDisk: 7,
	}, stats.NewStream(9))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddTestcases(tcs...); err != nil {
		t.Fatal(err)
	}
	id, err := s.register(testSnapshot(), "nonce-1")
	if err != nil {
		t.Fatal(err)
	}
	runs := []*core.Run{testRun()}
	if _, err := s.addResults(id, 1, encodeRuns(t, runs), runs); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveState(dir); err != nil {
		t.Fatal(err)
	}

	restored := New(2)
	if err := restored.LoadState(dir); err != nil {
		t.Fatal(err)
	}
	if restored.TestcaseCount() != 15 {
		t.Errorf("testcases = %d", restored.TestcaseCount())
	}
	got := restored.Results()
	if len(got) != 1 || got[0].Offset != 55 || got[0].LastFive[testcase.Disk][4] != 2.5 {
		t.Errorf("results = %+v", got)
	}
	snap, ok := restored.Snapshot(id)
	if !ok || snap.Hostname != "host" {
		t.Errorf("client registry lost: %v %v", snap, ok)
	}
	// New registrations after a restore must not collide with old ids.
	id2, err := restored.register(testSnapshot(), "")
	if err != nil {
		t.Fatal(err)
	}
	if id2 == id {
		t.Error("restored server reissued an existing id")
	}
	// The nonce map must survive a restore: a retried registration with
	// the original nonce gets the original id back.
	id3, err := restored.register(testSnapshot(), "nonce-1")
	if err != nil {
		t.Fatal(err)
	}
	if id3 != id {
		t.Errorf("retried registration after restore: got %s, want %s", id3, id)
	}
	// So must the sequence high-water mark: the acked batch is a dup.
	dup, err := restored.addResults(id, 1, encodeRuns(t, runs), runs)
	if err != nil {
		t.Fatal(err)
	}
	if !dup {
		t.Error("restored server re-applied an acked batch")
	}
	if len(restored.Results()) != 1 {
		t.Errorf("results after dup = %d", len(restored.Results()))
	}
}

func TestLoadStateEmptyDir(t *testing.T) {
	s := New(1)
	if err := s.LoadState(t.TempDir()); err != nil {
		t.Fatalf("fresh dir: %v", err)
	}
	if s.TestcaseCount() != 0 || len(s.Results()) != 0 {
		t.Error("fresh dir produced state")
	}
	if err := s.LoadState(""); err == nil {
		t.Error("empty dir path accepted")
	}
	if err := s.SaveState(""); err == nil {
		t.Error("empty save path accepted")
	}
}

func TestLoadStateCorruptFiles(t *testing.T) {
	// Snapshots are written atomically, so corruption anywhere in one is
	// an error.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, snapshotFile), []byte("not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := New(1).LoadState(dir); err == nil {
		t.Error("corrupt snapshot accepted")
	}

	// A corrupt journal line that is NOT the final line is an error too —
	// only a torn tail is explainable by a crash mid-append.
	dir2 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir2, journalFile), []byte("bogus\n{\"op\":\"meta\",\"ver\":2}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := New(1).LoadState(dir2); err == nil {
		t.Error("corrupt mid-journal line accepted")
	}

	// A client op without an id is rejected even in a snapshot.
	dir3 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir3, snapshotFile), []byte(`{"op":"client","snapshot":{}}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := New(1).LoadState(dir3); err == nil {
		t.Error("empty client id accepted")
	}

	// An unknown state version is rejected.
	dir4 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir4, snapshotFile), []byte(`{"op":"meta","ver":99}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := New(1).LoadState(dir4); err == nil {
		t.Error("future state version accepted")
	}
}

func TestLoadStateToleratesTornJournalTail(t *testing.T) {
	dir := t.TempDir()
	s := New(1)
	if err := s.OpenState(dir); err != nil {
		t.Fatal(err)
	}
	id, err := s.register(testSnapshot(), "n1")
	if err != nil {
		t.Fatal(err)
	}
	runs := []*core.Run{testRun()}
	if _, err := s.addResults(id, 1, encodeRuns(t, runs), runs); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: tear the final journal line.
	path := filepath.Join(dir, journalFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, []byte(`{"op":"results","id":"`+id+`","seq`)...), 0o644); err != nil {
		t.Fatal(err)
	}
	restored := New(1)
	if err := restored.LoadState(dir); err != nil {
		t.Fatalf("torn journal tail rejected: %v", err)
	}
	if restored.ClientCount() != 1 || len(restored.Results()) != 1 {
		t.Errorf("restored clients=%d results=%d", restored.ClientCount(), len(restored.Results()))
	}
}

func TestOpenStateJournalsBeforeAck(t *testing.T) {
	dir := t.TempDir()
	s := New(1)
	if err := s.OpenState(dir); err != nil {
		t.Fatal(err)
	}
	id, err := s.register(testSnapshot(), "n1")
	if err != nil {
		t.Fatal(err)
	}
	runs := []*core.Run{testRun()}
	if _, err := s.addResults(id, 1, encodeRuns(t, runs), runs); err != nil {
		t.Fatal(err)
	}
	// Crash without SaveState: the journal alone must restore everything.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	restored := New(1)
	if err := restored.LoadState(dir); err != nil {
		t.Fatal(err)
	}
	if restored.ClientCount() != 1 {
		t.Errorf("clients = %d", restored.ClientCount())
	}
	if got := restored.Results(); len(got) != 1 || got[0].Offset != 55 {
		t.Errorf("results = %+v", got)
	}
}

func TestSaveStateCompactsJournal(t *testing.T) {
	dir := t.TempDir()
	s := New(1)
	if err := s.OpenState(dir); err != nil {
		t.Fatal(err)
	}
	id, err := s.register(testSnapshot(), "n1")
	if err != nil {
		t.Fatal(err)
	}
	runs := []*core.Run{testRun()}
	if _, err := s.addResults(id, 1, encodeRuns(t, runs), runs); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveState(dir); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(filepath.Join(dir, journalFile))
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != 0 {
		t.Errorf("journal not truncated after compaction: %d bytes", info.Size())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	restored := New(1)
	if err := restored.LoadState(dir); err != nil {
		t.Fatal(err)
	}
	if restored.ClientCount() != 1 || len(restored.Results()) != 1 {
		t.Errorf("restored clients=%d results=%d", restored.ClientCount(), len(restored.Results()))
	}
}

// TestSaveStateKeepsOpsAckedDuringSnapshot pins open the race between
// a live server's intake and compaction: ops journaled (and acked to
// their clients) while the snapshot file is being written are covered
// by neither the snapshot's state copy nor — if compaction blindly
// truncated — the journal. They must survive in the compacted journal
// and restore after a crash, or an acked batch would be silently lost.
func TestSaveStateKeepsOpsAckedDuringSnapshot(t *testing.T) {
	dir := t.TempDir()
	s := New(1)
	if err := s.OpenState(dir); err != nil {
		t.Fatal(err)
	}
	id, err := s.register(testSnapshot(), "n1")
	if err != nil {
		t.Fatal(err)
	}
	runs := []*core.Run{testRun()}
	if _, err := s.addResults(id, 1, encodeRuns(t, runs), runs); err != nil {
		t.Fatal(err)
	}
	raced := testRun()
	raced.Offset = 99
	racedRuns := []*core.Run{raced}
	defer func() { testHookAfterSnapshot = nil }()
	testHookAfterSnapshot = func(srv *Server) {
		// A client upload and a registration land after the state copy
		// but before compaction: journaled, acked, not in the snapshot.
		if _, err := srv.addResults(id, 2, encodeRuns(t, racedRuns), racedRuns); err != nil {
			t.Error(err)
		}
		late := testSnapshot()
		late.Hostname = "late-host"
		if _, err := srv.register(late, "n-late"); err != nil {
			t.Error(err)
		}
	}
	if err := s.SaveState(dir); err != nil {
		t.Fatal(err)
	}
	testHookAfterSnapshot = nil
	// The compacted journal holds exactly the raced ops, nothing stale.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	restored := New(1)
	if err := restored.LoadState(dir); err != nil {
		t.Fatal(err)
	}
	if restored.ClientCount() != 2 {
		t.Errorf("clients = %d, want 2 (raced registration lost)", restored.ClientCount())
	}
	got := restored.Results()
	if len(got) != 2 {
		t.Fatalf("results = %d, want 2 (raced acked batch lost)", len(got))
	}
	offsets := map[float64]bool{got[0].Offset: true, got[1].Offset: true}
	if !offsets[55] || !offsets[99] {
		t.Errorf("restored offsets = %v, want {55, 99}", offsets)
	}
	// The raced batch's sequence number must survive too: a retry after
	// restart is still a dup, not a double count.
	dup, err := restored.addResults(id, 2, encodeRuns(t, racedRuns), racedRuns)
	if err != nil {
		t.Fatal(err)
	}
	if !dup {
		t.Error("restored server re-applied the raced acked batch")
	}
	// A retried registration with the raced nonce gets its id back.
	late := testSnapshot()
	late.Hostname = "late-host"
	if _, err := restored.register(late, "n-late"); err != nil {
		t.Fatal(err)
	}
	if restored.ClientCount() != 2 {
		t.Errorf("raced nonce not restored: clients = %d", restored.ClientCount())
	}
}

func TestStatePersistsAcrossServeCycle(t *testing.T) {
	dir := t.TempDir()
	s, addr := startServer(t, 10)
	conn := dialT(t, addr)
	register(t, conn)
	if err := s.SaveState(dir); err != nil {
		t.Fatal(err)
	}
	s2 := New(7)
	if err := s2.LoadState(dir); err != nil {
		t.Fatal(err)
	}
	if s2.ClientCount() != 1 || s2.TestcaseCount() != 10 {
		t.Errorf("restored: clients=%d testcases=%d", s2.ClientCount(), s2.TestcaseCount())
	}
}

// --- Journal format migration: v2 text journals under the v3 server ---

// v2Journal hand-writes a version-2-era journal: pure JSON lines and no
// jmeta header frame, byte-for-byte what a v2 build left on disk.
func v2Journal(t *testing.T, id string) []byte {
	t.Helper()
	snap := testSnapshot()
	var buf bytes.Buffer
	for _, op := range []journalOp{
		{Op: opClient, ID: id, Nonce: "n1", Snapshot: &snap},
		{Op: opResults, ID: id, Seq: 1, Payload: encodeRuns(t, []*core.Run{testRun()})},
	} {
		b, err := json.Marshal(op)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(b)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// resultsFrame encodes a v3 results wire frame and decodes it back into
// the borrowed Frame view the server's zero-copy ingest path holds when
// it journals an upload.
func resultsFrame(t *testing.T, id string, seq uint64, payload string) (*protocol.Frame, []byte) {
	t.Helper()
	wire, err := protocol.AppendFrame(nil, protocol.Message{
		Type: protocol.TypeResults, ClientID: id, Seq: seq, Payload: payload,
	})
	if err != nil {
		t.Fatal(err)
	}
	f := &protocol.Frame{}
	if _, err := protocol.DecodeFrame(wire, f); err != nil {
		t.Fatal(err)
	}
	return f, wire
}

// TestV2JournalReplaysUnderV3Server is the upgrade path: a journal left
// by a v2 build must replay under the v3 server with identical state,
// and opening it must not rewrite a single byte of it — v3 records are
// appended after the v2 prefix, never spliced into it.
func TestV2JournalReplaysUnderV3Server(t *testing.T) {
	dir := t.TempDir()
	const id = "uucs-00000000000000aa"
	orig := v2Journal(t, id)
	if err := os.WriteFile(filepath.Join(dir, journalFile), orig, 0o644); err != nil {
		t.Fatal(err)
	}

	s := New(1)
	if err := s.OpenState(dir); err != nil {
		t.Fatal(err)
	}
	if s.ClientCount() != 1 {
		t.Errorf("clients = %d", s.ClientCount())
	}
	if got := s.Results(); len(got) != 1 || got[0].Offset != 55 {
		t.Errorf("results = %+v", got)
	}
	// A non-empty journal never gets a jmeta header injected: the header
	// is only written file-first, and rewriting history would break the
	// bit-identity guarantee replicas rely on.
	mid, err := os.ReadFile(filepath.Join(dir, journalFile))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mid, orig) {
		t.Fatalf("opening a v2 journal rewrote it:\n got %q\nwant %q", mid, orig)
	}

	// The v3 server keeps appending to the v2 file — binary frames after
	// JSON lines, one mixed-format journal.
	run2 := testRun()
	run2.Offset = 99
	f, wire := resultsFrame(t, id, 2, encodeRuns(t, []*core.Run{run2}))
	if _, err := s.addResultsFrame(f, []*core.Run{run2}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(filepath.Join(dir, journalFile))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(after, orig) {
		t.Fatal("append disturbed the v2 prefix")
	}
	if !bytes.Equal(after[len(orig):], wire) {
		t.Fatalf("journaled frame is not the verbatim wire bytes:\n got %q\nwant %q", after[len(orig):], wire)
	}

	// The mixed journal replays: both batches, both seqs deduplicated.
	restored := New(1)
	if err := restored.LoadState(dir); err != nil {
		t.Fatal(err)
	}
	if restored.ClientCount() != 1 || len(restored.Results()) != 2 {
		t.Fatalf("mixed-journal restore: clients=%d results=%d", restored.ClientCount(), len(restored.Results()))
	}
	for _, seq := range []uint64{1, 2} {
		dup, err := restored.addResults(id, seq, encodeRuns(t, []*core.Run{run2}), []*core.Run{run2})
		if err != nil {
			t.Fatal(err)
		}
		if !dup {
			t.Errorf("seq %d replayed from mixed journal was not deduplicated", seq)
		}
	}

	// Replay is a pure read: a second open/close cycle leaves the mixed
	// file bit-identical.
	s2 := New(1)
	if err := s2.OpenState(dir); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	final, err := os.ReadFile(filepath.Join(dir, journalFile))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(final, after) {
		t.Fatal("idle open/close cycle rewrote the journal")
	}
}

// TestJournalMigrationCorruption pins the torn-versus-poisoned line for
// binary journal records: a frame the file ends inside is a crash
// artifact and is dropped, but a complete frame that fails its CRC (or
// declares a format this build does not speak) poisons the load at any
// position — including the tail, where tearing cannot manufacture a
// valid length+CRC pair.
func TestJournalMigrationCorruption(t *testing.T) {
	const id = "uucs-00000000000000bb"
	header, err := protocol.AppendFrame(nil, protocol.Message{Type: protocol.TypeJournalMeta, Ver: journalFormatVersion})
	if err != nil {
		t.Fatal(err)
	}
	futureHeader, err := protocol.AppendFrame(nil, protocol.Message{Type: protocol.TypeJournalMeta, Ver: journalFormatVersion + 1})
	if err != nil {
		t.Fatal(err)
	}
	ackFrame, err := protocol.AppendFrame(nil, protocol.Message{Type: protocol.TypeAck, Seq: 1})
	if err != nil {
		t.Fatal(err)
	}
	snap := testSnapshot()
	clientJSON, err := json.Marshal(journalOp{Op: opClient, ID: id, Nonce: "n1", Snapshot: &snap})
	if err != nil {
		t.Fatal(err)
	}
	clientLine := append(clientJSON, '\n')
	_, resWire := resultsFrame(t, id, 1, encodeRuns(t, []*core.Run{testRun()}))

	join := func(parts ...[]byte) []byte {
		var b []byte
		for _, p := range parts {
			b = append(b, p...)
		}
		return b
	}
	flipLast := func(b []byte) []byte {
		c := append([]byte(nil), b...)
		c[len(c)-1] ^= 0x01
		return c
	}

	tests := []struct {
		name    string
		journal []byte
		wantErr bool
		clients int
		results int
	}{
		{
			name:    "clean mixed journal",
			journal: join(header, clientLine, resWire),
			clients: 1, results: 1,
		},
		{
			name:    "jmeta header corrupted mid-file",
			journal: join(flipLast(header), clientLine),
			wantErr: true,
		},
		{
			name:    "future journal format version",
			journal: join(futureHeader, clientLine),
			wantErr: true,
		},
		{
			name:    "non-journal frame type",
			journal: join(header, ackFrame),
			wantErr: true,
		},
		{
			name:    "binary record torn at EOF",
			journal: join(header, clientLine, resWire[:len(resWire)-7]),
			clients: 1, results: 0,
		},
		{
			name:    "length prefix torn at EOF",
			journal: join(header, clientLine, resWire[:3]),
			clients: 1, results: 0,
		},
		{
			name:    "complete record with bad CRC at EOF",
			journal: join(header, clientLine, flipLast(resWire)),
			wantErr: true,
		},
		{
			name:    "binary record corrupted mid-file",
			journal: join(header, flipLast(resWire), clientLine),
			wantErr: true,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, journalFile), tc.journal, 0o644); err != nil {
				t.Fatal(err)
			}
			s := New(1)
			err := s.LoadState(dir)
			if tc.wantErr {
				if err == nil {
					t.Fatal("corrupt journal accepted")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if s.ClientCount() != tc.clients || len(s.Results()) != tc.results {
				t.Errorf("clients=%d results=%d, want %d/%d", s.ClientCount(), len(s.Results()), tc.clients, tc.results)
			}
		})
	}
}

// TestV3FrameJournalReplaysAcrossRestart covers the new-format
// lifecycle end to end: a fresh v3 journal starts with the jmeta header
// frame, stores uploads as verbatim wire frames, and restores state —
// including the dedup high-water mark — from a straight re-read.
func TestV3FrameJournalReplaysAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	s := New(1)
	if err := s.OpenState(dir); err != nil {
		t.Fatal(err)
	}
	id, err := s.register(testSnapshot(), "n1")
	if err != nil {
		t.Fatal(err)
	}
	runs := []*core.Run{testRun()}
	f, wire := resultsFrame(t, id, 1, encodeRuns(t, runs))
	if _, err := s.addResultsFrame(f, runs); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(filepath.Join(dir, journalFile))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 || data[0] != protocol.FrameMagic {
		t.Fatal("fresh v3 journal does not start with the jmeta header frame")
	}
	if !bytes.Contains(data, wire) {
		t.Fatal("journal does not hold the upload's verbatim wire frame")
	}

	restored := New(1)
	if err := restored.LoadState(dir); err != nil {
		t.Fatal(err)
	}
	if restored.ClientCount() != 1 {
		t.Errorf("clients = %d", restored.ClientCount())
	}
	if got := restored.Results(); len(got) != 1 || got[0].Offset != 55 {
		t.Errorf("results = %+v", got)
	}
	dup, err := restored.addResults(id, 1, encodeRuns(t, runs), runs)
	if err != nil {
		t.Fatal(err)
	}
	if !dup {
		t.Error("acked v3-journaled batch re-applied after restart")
	}
}
