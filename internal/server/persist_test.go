package server

import (
	"os"
	"path/filepath"
	"testing"

	"uucs/internal/core"
	"uucs/internal/stats"
	"uucs/internal/testcase"
)

func TestSaveLoadStateRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := New(1)
	tcs, err := testcase.Generate("p", testcase.GeneratorConfig{
		Count: 15, Rate: 1, Duration: 20,
		BlankFraction: 0.1, QueueFraction: 0.4, MaxCPU: 10, MaxDisk: 7,
	}, stats.NewStream(9))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddTestcases(tcs...); err != nil {
		t.Fatal(err)
	}
	id := s.register(testSnapshot())
	s.addResults([]*core.Run{{
		TestcaseID: "p-00001", Task: testcase.IE, UserID: 3,
		Terminated: core.Discomfort, Offset: 55,
		PrimaryResource: testcase.Disk,
		Levels:          map[testcase.Resource]float64{testcase.Disk: 2.5},
		LastFive:        map[testcase.Resource][]float64{testcase.Disk: {2.1, 2.2, 2.3, 2.4, 2.5}},
	}})
	if err := s.SaveState(dir); err != nil {
		t.Fatal(err)
	}

	restored := New(2)
	if err := restored.LoadState(dir); err != nil {
		t.Fatal(err)
	}
	if restored.TestcaseCount() != 15 {
		t.Errorf("testcases = %d", restored.TestcaseCount())
	}
	runs := restored.Results()
	if len(runs) != 1 || runs[0].Offset != 55 || runs[0].LastFive[testcase.Disk][4] != 2.5 {
		t.Errorf("results = %+v", runs)
	}
	snap, ok := restored.Snapshot(id)
	if !ok || snap.Hostname != "host" {
		t.Errorf("client registry lost: %v %v", snap, ok)
	}
	// New registrations after a restore must not collide with old ids.
	id2 := restored.register(testSnapshot())
	if id2 == id {
		t.Error("restored server reissued an existing id")
	}
}

func TestLoadStateEmptyDir(t *testing.T) {
	s := New(1)
	if err := s.LoadState(t.TempDir()); err != nil {
		t.Fatalf("fresh dir: %v", err)
	}
	if s.TestcaseCount() != 0 || len(s.Results()) != 0 {
		t.Error("fresh dir produced state")
	}
	if err := s.LoadState(""); err == nil {
		t.Error("empty dir path accepted")
	}
	if err := s.SaveState(""); err == nil {
		t.Error("empty save path accepted")
	}
}

func TestLoadStateCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, serverClients), []byte("not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := New(1)
	if err := s.LoadState(dir); err == nil {
		t.Error("corrupt client registry accepted")
	}
	dir2 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir2, serverTestcases), []byte("bogus\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := New(1).LoadState(dir2); err == nil {
		t.Error("corrupt testcase store accepted")
	}
	dir3 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir3, serverClients), []byte(`{"id":"","snapshot":{}}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := New(1).LoadState(dir3); err == nil {
		t.Error("empty client id accepted")
	}
}

func TestStatePersistsAcrossServeCycle(t *testing.T) {
	dir := t.TempDir()
	s, addr := startServer(t, 10)
	conn := dialT(t, addr)
	register(t, conn)
	if err := s.SaveState(dir); err != nil {
		t.Fatal(err)
	}
	s2 := New(7)
	if err := s2.LoadState(dir); err != nil {
		t.Fatal(err)
	}
	if s2.ClientCount() != 1 || s2.TestcaseCount() != 10 {
		t.Errorf("restored: clients=%d testcases=%d", s2.ClientCount(), s2.TestcaseCount())
	}
}
