//go:build !race

package server

// raceEnabled reports whether the race detector is instrumenting this
// build. The allocation-ceiling tests skip under race: race mode's
// instrumentation (and sync.Pool's deliberate item dropping) makes the
// steady-state allocation count nondeterministic.
const raceEnabled = false
