package server

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"uucs/internal/protocol"
	"uucs/internal/telemetry"
)

// Group-commit journaling. PR 2 made every accepted op durable before
// its ack by running a synchronous marshal + write + fsync under the
// server's one big lock — correct, but it priced every message at a
// full disk flush. The journalWriter below keeps the guarantee and
// amortizes the flush: appenders enqueue pre-marshaled ops and block on
// a per-op done channel; a single writer goroutine drains whatever has
// queued up, writes it as one buffered append, calls fsync once, and
// only then releases every op the flush covered. Under K concurrent
// clients the fsync cost is paid once per batch instead of once per op,
// which is where the ingest throughput multiplier comes from.
//
// Correctness hinges on two properties callers rely on:
//
//   - An op's done channel fires only after the fsync covering its
//     bytes returns, so journal-before-ack survives unchanged: nothing
//     is acknowledged that a crash could lose.
//   - Ops are written in enqueue order (single writer, FIFO queue), so
//     a barrier op observes everything enqueued before it, and a
//     client's registration always precedes its uploads on disk
//     because the upload cannot start until the registration's ack —
//     and therefore its fsync — has completed.
//
// A write or sync failure poisons the writer: the failing batch and
// every later append report the error, so no ack can ever be emitted
// on top of a journal in an unknown state (the fsync-failure stance
// databases take: stop acking rather than guess).

// Group-commit defaults, overridable via Server.JournalBatch /
// Server.JournalDelay (-journal-batch / -journal-delay on uucs-server).
const (
	defaultJournalBatch = 64
	// defaultJournalDelay of zero means "never wait": a batch is
	// whatever queued while the previous fsync was in flight. That is
	// the right default for closed-loop clients — waiting would add
	// latency without adding throughput — but a positive delay can
	// trade latency for bigger batches on spinning disks.
	defaultJournalDelay = 0 * time.Millisecond
)

// batchHistBuckets is the number of power-of-two group-commit batch
// size buckets tracked for observability (1, 2, 3-4, 5-8, ... ops).
const batchHistBuckets = 17

// testHookBeforeJournalSync, when non-nil, runs between a batch's
// buffered write and its fsync — the window in which a crash leaves
// appended-but-unsynced bytes whose fate the page cache decides. A
// non-nil return is treated exactly like an fsync failure, which is how
// crash tests kill the server inside that window.
var testHookBeforeJournalSync func() error

// journalReq is one queued append. A nil data slice is a barrier: it
// carries no bytes but its done channel still fires only after every
// earlier op is durable.
type journalReq struct {
	data []byte
	done chan error
}

// segInfo tracks one sealed journal segment. base/skip/size place the
// segment in the logical journal stream: physical bytes [skip, size)
// hold logical offsets [base, base+size-skip). skip covers the
// physical-only jmeta header a rotation writes at the head of a fresh
// file — header bytes created mid-life are never counted as logical
// journal bytes, so the enq accounting SaveState's compaction cut
// relies on is untouched by rotation.
type segInfo struct {
	path string
	seq  int
	base int64
	skip int64
	size int64
}

// end returns the logical offset just past the segment's last byte.
func (sg segInfo) end() int64 { return sg.base + (sg.size - sg.skip) }

// journalWriter owns the journal file and the group-commit loop.
type journalWriter struct {
	maxBatch int
	maxDelay time.Duration
	// syncCost, when positive, models a slower storage device by
	// stretching every fsync to at least that long. Group-commit
	// throughput is a function of fsync latency, so measurement rigs
	// (uucs-loadgen) use this to reproduce the paper-era spinning-disk
	// deployment on hardware whose fsync is microseconds.
	syncCost time.Duration
	// ship, when non-nil, replicates each committed batch's bytes to a
	// follower before the batch's acks are released (Server.JournalShip).
	// Called with the coalescing buffer under fmu, so segments arrive at
	// the follower in exact journal append order. A ship failure poisons
	// the writer like an fsync failure: an ack must never claim
	// durability the replica does not have.
	ship func(segment []byte) error

	// qmu guards the append queue and the logical enqueue offset.
	qmu    sync.Mutex
	queue  []*journalReq
	closed bool
	err    error // sticky first failure; set under qmu
	// enq is the logical journal offset: total bytes ever accepted into
	// the queue, counted from the start of the journal's life. Because
	// the writer is FIFO, an op enqueued when enq == x occupies logical
	// bytes [x, x+len). SaveState records this as the offset its state
	// copy covers.
	enq int64

	kick   chan struct{}
	exited chan struct{}

	// fmu serializes file access between the writer's commits,
	// rotation, and compaction's read-tail-and-swap.
	fmu sync.Mutex
	f   *os.File
	// dir is the state directory the journal lives in (segment files
	// are its siblings).
	dir string
	// segBytes, when positive, seals the active file into a numbered
	// segment once its physical size reaches it. Zero keeps the legacy
	// single-file journal.
	segBytes int64
	// segs are the sealed segments still on disk, ascending seq.
	segs []segInfo
	// nextSeq numbers the next segment to seal.
	nextSeq int
	// base is the logical offset of the active file's physical byte
	// skip: zero at open, then advanced by each rotation (to the sealed
	// prefix's logical end) and each compaction (to the compaction cut).
	base int64
	// skip is the physical size of the active file's header prefix that
	// is not part of the logical stream (a rotation-written jmeta
	// header; zero for a file inherited at open or rebuilt by compaction).
	skip int64
	// fsize is the active file's physical size.
	fsize int64

	wbuf []byte // writer-goroutine-only coalescing buffer

	// crashAfter, when positive, SIGKILLs the process (via crashFn)
	// once opsWritten reaches it — after the buffered write of the
	// batch that crosses the threshold, before its fsync. Test hook
	// only; see Server.CrashAfterJournalOps.
	crashAfter int
	crashFn    func()
	opsWritten uint64 // writer-goroutine-only

	// Observability counters (atomic; read by Server.Stats).
	ops       atomic.Uint64 // non-barrier ops made durable
	fsyncs    atomic.Uint64 // fsync calls issued
	bytesOut  atomic.Uint64 // journal bytes written
	sealed    atomic.Uint64 // segments sealed by rotation this life
	batchHist [batchHistBuckets]atomic.Uint64

	// USE collectors (telemetry): queueDepth tracks reqs accepted but
	// not yet taken by the writer, ackBacklog tracks ops written or
	// queued whose ack is still waiting on a covering fsync, flushLat
	// samples the duration of each flush (write+fsync, including any
	// modeled syncCost), and flushBusy accumulates total nanoseconds
	// spent flushing — flushBusy/uptime is the journal device's busy
	// fraction, the single best "is the disk the bottleneck" reading.
	queueDepth telemetry.Gauge
	ackBacklog telemetry.Gauge
	flushLat   telemetry.Ring
	flushBusy  telemetry.Counter
}

// newJournalWriter wraps an append-only journal file whose current size
// is size (the logical offset already on disk). Call go w.run() to
// start the commit loop.
func newJournalWriter(f *os.File, size int64, maxBatch int, maxDelay time.Duration) *journalWriter {
	if maxBatch <= 0 {
		maxBatch = defaultJournalBatch
	}
	return &journalWriter{
		maxBatch: maxBatch,
		maxDelay: maxDelay,
		f:        f,
		enq:      size,
		kick:     make(chan struct{}, 1),
		exited:   make(chan struct{}),
	}
}

// enqueue accepts one pre-marshaled op (or a barrier, data == nil) into
// the commit queue and returns its pending handle. It never blocks on
// I/O, so callers may hold state locks across it — that is what makes
// "state visible in memory implies op already enqueued" cheap to
// guarantee.
func (w *journalWriter) enqueue(data []byte) *journalReq {
	r := &journalReq{data: data, done: make(chan error, 1)}
	w.qmu.Lock()
	if w.err != nil || w.closed {
		err := w.err
		if err == nil {
			err = fmt.Errorf("server: journal closed")
		}
		w.qmu.Unlock()
		r.done <- err
		return r
	}
	w.queue = append(w.queue, r)
	w.enq += int64(len(data))
	w.qmu.Unlock()
	w.queueDepth.Add(1)
	if data != nil {
		w.ackBacklog.Add(1)
	}
	select {
	case w.kick <- struct{}{}:
	default:
	}
	return r
}

// append enqueues data and blocks until the fsync covering it returns.
func (w *journalWriter) append(data []byte) error {
	return <-w.enqueue(data).done
}

// barrier blocks until every op enqueued before it is durable. The dup
// path uses it: re-acking a batch whose original upload may still be
// mid-group-commit must wait for that commit, or the dup ack would
// claim durability the disk does not yet have.
func (w *journalWriter) barrier() error {
	return <-w.enqueue(nil).done
}

// enqueued returns the logical journal offset covering everything
// accepted so far. Callers that hold all server state locks get the
// compaction invariant: every op below this offset is already applied
// to the state they are about to copy.
func (w *journalWriter) enqueued() int64 {
	w.qmu.Lock()
	defer w.qmu.Unlock()
	return w.enq
}

// take grabs the entire pending queue, reporting whether the writer
// should exit (closed and drained).
func (w *journalWriter) take() (batch []*journalReq, exit bool) {
	w.qmu.Lock()
	defer w.qmu.Unlock()
	batch = w.queue
	w.queue = nil
	if len(batch) > 0 {
		w.queueDepth.Add(-int64(len(batch)))
	}
	return batch, batch == nil && w.closed
}

// failed returns the writer's sticky error (nil while healthy) — the
// USE errors reading for journal poison.
func (w *journalWriter) failed() error {
	w.qmu.Lock()
	defer w.qmu.Unlock()
	return w.err
}

// run is the group-commit loop. One goroutine per journalWriter.
func (w *journalWriter) run() {
	defer close(w.exited)
	for range w.kick {
		for {
			batch, exit := w.take()
			if batch == nil {
				if exit {
					return
				}
				break
			}
			if w.maxDelay > 0 && len(batch) < w.maxBatch {
				// Optional accumulation window: trade ack latency for
				// fewer, larger fsyncs.
				time.Sleep(w.maxDelay)
				more, _ := w.take()
				batch = append(batch, more...)
			}
			for len(batch) > 0 {
				n := len(batch)
				if n > w.maxBatch {
					n = w.maxBatch
				}
				w.commit(batch[:n])
				batch = batch[n:]
			}
		}
	}
}

// commit writes one batch as a single buffered append, fsyncs once, and
// releases every member. A failure poisons the writer and is reported
// to the whole batch.
func (w *journalWriter) commit(batch []*journalReq) {
	w.qmu.Lock()
	err := w.err
	w.qmu.Unlock()
	if err == nil {
		w.wbuf = w.wbuf[:0]
		ops := 0
		for _, r := range batch {
			if len(r.data) > 0 {
				w.wbuf = append(w.wbuf, r.data...)
				ops++
			}
		}
		if len(w.wbuf) > 0 {
			start := time.Now()
			w.fmu.Lock()
			if _, werr := w.f.Write(w.wbuf); werr != nil {
				err = fmt.Errorf("server: journal append: %w", werr)
			} else {
				w.opsWritten += uint64(ops)
				if w.crashAfter > 0 && w.opsWritten >= uint64(w.crashAfter) && w.crashFn != nil {
					// Crash-test hook: die between the buffered write and
					// the fsync — bytes appended, nothing durable, no ack
					// sent. crashFn SIGKILLs the process and never returns.
					w.crashFn()
				}
				if testHookBeforeJournalSync != nil {
					err = testHookBeforeJournalSync()
				}
				if err == nil {
					if serr := w.f.Sync(); serr != nil {
						err = fmt.Errorf("server: journal sync: %w", serr)
					}
				}
			}
			if err == nil && w.ship != nil {
				// Semi-synchronous replication: the batch is on the local
				// disk; now put it on the follower's before anyone is told
				// it is durable. Runs under fmu so segments ship in append
				// order, which is what lets the follower's replica journal
				// stay a byte-exact prefix of this one.
				if serr := w.ship(w.wbuf); serr != nil {
					err = fmt.Errorf("server: journal ship: %w", serr)
				}
			}
			if err == nil && w.syncCost > 0 {
				// Modeled device: the flush takes at least syncCost; ops
				// keep queueing behind it, exactly as on a slow disk.
				if d := w.syncCost - time.Since(start); d > 0 {
					time.Sleep(d)
				}
			}
			if err == nil {
				w.fsize += int64(len(w.wbuf))
				if w.segBytes > 0 && w.fsize >= w.segBytes {
					// The batch just flushed is durable and about to be
					// acked; seal the file behind it so the next batch
					// opens a fresh segment. A rotation failure poisons
					// the writer like an fsync failure: the journal's
					// on-disk shape is no longer known-good.
					err = w.rotateLocked()
				}
			}
			w.fmu.Unlock()
			if err == nil {
				w.ops.Add(uint64(ops))
				w.fsyncs.Add(1)
				w.bytesOut.Add(uint64(len(w.wbuf)))
				w.batchHist[histBucket(ops)].Add(1)
				// The flush duration covers write + fsync + any modeled
				// syncCost — what an ack actually waited on.
				d := time.Since(start)
				w.flushLat.ObserveDuration(d)
				w.flushBusy.Add(uint64(d))
			}
		}
		if err != nil {
			w.qmu.Lock()
			if w.err == nil {
				w.err = err
			}
			w.qmu.Unlock()
		}
	}
	for _, r := range batch {
		if r.data != nil {
			w.ackBacklog.Add(-1)
		}
		r.done <- err
	}
}

// histBucket maps a batch size to its power-of-two histogram bucket:
// bucket b counts batches of (2^(b-1), 2^b] ops, bucket 0 is size 1.
func histBucket(n int) int {
	b := 0
	for n > 1 {
		n = (n + 1) / 2
		b++
	}
	if b >= batchHistBuckets {
		b = batchHistBuckets - 1
	}
	return b
}

// rotateLocked seals the active journal file into the next numbered
// segment and opens a fresh active file headed by its own jmeta frame.
// Called by the writer goroutine under fmu, between batches, so no op
// ever straddles a segment boundary. The header is written and synced
// before any op lands in the new file, but it is physical-only (skip):
// logical offsets — enq, the compaction cut — are untouched, which is
// what keeps SaveState's "everything below the recorded offset is in
// the snapshot" invariant exact across rotations.
func (w *journalWriter) rotateLocked() error {
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("server: journal seal: %w", err)
	}
	active := journalPathIn(w.dir)
	segPath := segmentPathIn(w.dir, w.nextSeq)
	if err := os.Rename(active, segPath); err != nil {
		return fmt.Errorf("server: journal seal: %w", err)
	}
	w.segs = append(w.segs, segInfo{path: segPath, seq: w.nextSeq, base: w.base, skip: w.skip, size: w.fsize})
	w.nextSeq++
	hdr, err := protocol.AppendFrame(nil, protocol.Message{Type: protocol.TypeJournalMeta, Ver: journalFormatVersion})
	if err != nil {
		return err
	}
	nf, err := os.OpenFile(active, os.O_CREATE|os.O_EXCL|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("server: journal rotate: %w", err)
	}
	if _, err := nf.Write(hdr); err != nil {
		nf.Close()
		return fmt.Errorf("server: journal rotate: %w", err)
	}
	if err := nf.Sync(); err != nil {
		nf.Close()
		return fmt.Errorf("server: journal rotate: %w", err)
	}
	w.base += w.fsize - w.skip
	w.skip = int64(len(hdr))
	w.fsize = int64(len(hdr))
	w.f = nf
	w.sealed.Add(1)
	return nil
}

// compactTo drops the journal prefix below the logical offset off:
// everything below off is covered by the snapshot the caller just
// wrote; everything at or past it — journaled and possibly acked while
// the snapshot was being written — must survive, preserving the PR 2
// offset-tracking fix. Sealed segments wholly below the cut are simply
// deleted (the payoff of segmentation: compaction is O(tail), not
// O(journal)); the at-most-one partially covered file — a sealed
// segment or the active file — has its covered prefix trimmed exactly,
// because replay applies unsequenced ops unconditionally and must
// never see a covered one again. The caller must have barrier()ed
// first so the files are complete through off.
func (w *journalWriter) compactTo(off int64, path string) error {
	w.fmu.Lock()
	defer w.fmu.Unlock()
	keep := w.segs[:0]
	for _, sg := range w.segs {
		switch {
		case sg.end() <= off:
			if err := os.Remove(sg.path); err != nil {
				return err
			}
			continue
		case sg.base < off:
			data, err := os.ReadFile(sg.path)
			if err != nil {
				return err
			}
			tail := data[sg.skip+(off-sg.base):]
			if err := writeFileAtomic(sg.path, func(f *os.File) error {
				if len(tail) == 0 {
					return nil
				}
				_, err := f.Write(tail)
				return err
			}); err != nil {
				return err
			}
			sg.base, sg.skip, sg.size = off, 0, int64(len(tail))
		}
		keep = append(keep, sg)
	}
	w.segs = keep
	if off <= w.base {
		// Rotation moved the whole active file past the cut while the
		// snapshot was being written; it survives untouched.
		return nil
	}
	var tail []byte
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if cut := w.skip + (off - w.base); int64(len(data)) > cut {
		tail = data[cut:]
	}
	if err := writeFileAtomic(path, func(f *os.File) error {
		if len(tail) == 0 {
			return nil
		}
		_, err := f.Write(tail)
		return err
	}); err != nil {
		return err
	}
	nf, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	w.f.Close()
	w.f = nf
	w.base = off
	w.skip = 0
	w.fsize = int64(len(tail))
	return nil
}

// errJournalCrashed is the sticky error an aborted writer reports to
// every queued and future append.
var errJournalCrashed = fmt.Errorf("server: journal abandoned by crash")

// abort is close's crash-shaped sibling: it poisons the writer so every
// queued op errors out instead of being flushed, stops the loop, and
// closes the file without a final sync. Bytes already written stay on
// disk (possibly a torn tail); bytes still queued vanish un-acked —
// the exact semantics of SIGKILL between enqueue and fsync.
func (w *journalWriter) abort() {
	w.qmu.Lock()
	if w.err == nil {
		w.err = errJournalCrashed
	}
	alreadyClosed := w.closed
	w.closed = true
	w.qmu.Unlock()
	select {
	case w.kick <- struct{}{}:
	default:
	}
	<-w.exited
	if alreadyClosed {
		return
	}
	w.fmu.Lock()
	defer w.fmu.Unlock()
	_ = w.f.Close()
}

// close flushes every queued op, stops the writer, and closes the file.
// Appends issued after close fail rather than vanish.
func (w *journalWriter) close() error {
	w.qmu.Lock()
	if w.closed {
		w.qmu.Unlock()
		<-w.exited
		return nil
	}
	w.closed = true
	w.qmu.Unlock()
	select {
	case w.kick <- struct{}{}:
	default:
	}
	<-w.exited
	w.fmu.Lock()
	defer w.fmu.Unlock()
	return w.f.Close()
}

// segCount returns how many sealed segments are on disk right now.
func (w *journalWriter) segCount() int {
	w.fmu.Lock()
	defer w.fmu.Unlock()
	return len(w.segs)
}

// journalPathIn returns dir's journal file path.
func journalPathIn(dir string) string {
	return filepath.Join(dir, journalFile)
}

// segmentPathIn returns the path of dir's sealed journal segment seq.
func segmentPathIn(dir string, seq int) string {
	return filepath.Join(dir, fmt.Sprintf("journal-%06d.seg", seq))
}

// segmentSeq reports the seal sequence number encoded in a sealed
// segment's base file name (journal-NNNNNN.seg), or ok == false if the
// name is not a segment.
func segmentSeq(base string) (seq int, ok bool) {
	const pre, suf = "journal-", ".seg"
	if len(base) <= len(pre)+len(suf) ||
		base[:len(pre)] != pre || base[len(base)-len(suf):] != suf {
		return 0, false
	}
	digits := base[len(pre) : len(base)-len(suf)]
	for _, c := range digits {
		if c < '0' || c > '9' {
			return 0, false
		}
		seq = seq*10 + int(c-'0')
	}
	return seq, true
}
