// Package server implements the UUCS server (paper Figure 1): it stores
// testcases and results in text form, registers clients by handing out
// globally unique identifiers for their machine snapshots, serves
// growing random samples of testcases at hot sync, and collects uploaded
// results for the analysis phase (Figure 2).
package server

import (
	"fmt"
	"math"
	"net"
	"strings"
	"sync"

	"uucs/internal/core"
	"uucs/internal/protocol"
	"uucs/internal/stats"
	"uucs/internal/testcase"
)

// Server is a UUCS server. All methods are safe for concurrent use; one
// goroutine is spawned per client connection.
//
// All server-side randomness (registration ids, testcase sampling) is
// derived from the seed and the request's own identity rather than
// drawn from a shared stream, so responses do not depend on the order
// concurrent clients happen to arrive in. This is what keeps a
// parallel fleet simulation bit-identical to a serial one.
type Server struct {
	mu        sync.Mutex
	seed      uint64
	testcases []*testcase.Testcase
	tcIndex   map[string]int
	results   []*core.Run
	clients   map[string]protocol.Snapshot

	ln     net.Listener
	wg     sync.WaitGroup
	closed bool
}

// New returns an empty server. seed drives the random testcase sampling.
func New(seed uint64) *Server {
	return &Server{
		seed:    seed,
		tcIndex: make(map[string]int),
		clients: make(map[string]protocol.Snapshot),
	}
}

// AddTestcases adds testcases to the store; new testcases can be added
// to the server at any time and propagate to clients at their next hot
// sync. Duplicate IDs are replaced.
func (s *Server) AddTestcases(tcs ...*testcase.Testcase) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, tc := range tcs {
		if err := tc.Validate(); err != nil {
			return err
		}
		if i, ok := s.tcIndex[tc.ID]; ok {
			s.testcases[i] = tc
			continue
		}
		s.tcIndex[tc.ID] = len(s.testcases)
		s.testcases = append(s.testcases, tc)
	}
	return nil
}

// TestcaseCount returns the number of stored testcases.
func (s *Server) TestcaseCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.testcases)
}

// Results returns a copy of all uploaded run records.
func (s *Server) Results() []*core.Run {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*core.Run, len(s.results))
	copy(out, s.results)
	return out
}

// ClientCount returns the number of registered clients.
func (s *Server) ClientCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.clients)
}

// Snapshot returns the registration snapshot for a client id.
func (s *Server) Snapshot(clientID string) (protocol.Snapshot, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap, ok := s.clients[clientID]
	return snap, ok
}

// hashMix folds v into an FNV-1a style running hash.
func hashMix(h, v uint64) uint64 {
	h ^= v
	h *= 0x100000001b3
	h ^= h >> 29
	return h
}

// hashString folds a string into a running hash byte by byte.
func hashString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = hashMix(h, uint64(s[i]))
	}
	return hashMix(h, uint64(len(s))+1)
}

// snapshotHash derives a 64-bit identity from a registration snapshot
// and the server seed.
func (s *Server) snapshotHash(snap protocol.Snapshot) uint64 {
	h := hashMix(s.seed, 0x75756373) // "uucs"
	h = hashString(h, snap.Hostname)
	h = hashString(h, snap.OS)
	h = hashMix(h, math.Float64bits(snap.CPUGHz))
	h = hashMix(h, math.Float64bits(snap.MemMB))
	h = hashMix(h, math.Float64bits(snap.DiskGB))
	return h
}

// register assigns a globally unique identifier to a snapshot. The id
// derives from the snapshot content, so distinct machines get the same
// id regardless of registration order; repeated registrations of an
// identical snapshot are disambiguated deterministically by remixing.
func (s *Server) register(snap protocol.Snapshot) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := s.snapshotHash(snap)
	id := fmt.Sprintf("uucs-%016x", h)
	for {
		if _, taken := s.clients[id]; !taken {
			break
		}
		h = hashMix(h, 0x9e3779b97f4a7c15)
		id = fmt.Sprintf("uucs-%016x", h)
	}
	s.clients[id] = snap
	return id
}

// sample returns up to want testcases the client does not yet have,
// chosen uniformly at random — combined with the client's local random
// choice and Poisson execution times, this makes the fleet execute a
// random sample with respect to testcases, users, and times (§2). The
// shuffle stream derives from (seed, client, sync generation), never
// from shared state, so a client's sample sequence is the same whether
// the fleet runs serially or fully interleaved.
func (s *Server) sample(clientID string, have map[string]bool, want int) []*testcase.Testcase {
	s.mu.Lock()
	defer s.mu.Unlock()
	var candidates []*testcase.Testcase
	for _, tc := range s.testcases {
		if !have[tc.ID] {
			candidates = append(candidates, tc)
		}
	}
	if want >= len(candidates) {
		return candidates
	}
	h := hashString(hashMix(s.seed, 0x73616d70), clientID) // "samp"
	h = hashMix(h, uint64(len(have)))
	rng := stats.NewStream(h)
	rng.Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})
	return candidates[:want]
}

// addResults ingests uploaded run records.
func (s *Server) addResults(runs []*core.Run) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.results = append(s.results, runs...)
}

// Serve accepts connections on ln until Close. It blocks.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(protocol.NewConn(conn))
		}()
	}
}

// ListenAndServe listens on addr (e.g. "127.0.0.1:0") and serves in a
// background goroutine, returning the bound address.
func (s *Server) ListenAndServe(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go func() {
		_ = s.Serve(ln)
	}()
	return ln.Addr().String(), nil
}

// Close stops accepting and waits for in-flight sessions.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// handle runs one client session: any number of requests until EOF.
func (s *Server) handle(conn *protocol.Conn) {
	defer conn.Close()
	for {
		msg, err := conn.Recv()
		if err != nil {
			return // EOF or broken connection
		}
		if err := s.dispatch(conn, msg); err != nil {
			_ = conn.SendError(err)
		}
	}
}

func (s *Server) dispatch(conn *protocol.Conn, msg protocol.Message) error {
	switch msg.Type {
	case protocol.TypeRegister:
		if msg.Ver != protocol.Version {
			return fmt.Errorf("unsupported protocol version %d", msg.Ver)
		}
		if msg.Snapshot == nil {
			return fmt.Errorf("register without snapshot")
		}
		if err := msg.Snapshot.Validate(); err != nil {
			return err
		}
		id := s.register(*msg.Snapshot)
		return conn.Send(protocol.Message{Type: protocol.TypeRegistered, ClientID: id})

	case protocol.TypeSync:
		if err := s.checkClient(msg.ClientID); err != nil {
			return err
		}
		want := msg.Want
		if want <= 0 {
			want = 16
		}
		have := make(map[string]bool, len(msg.Have))
		for _, id := range msg.Have {
			have[id] = true
		}
		tcs := s.sample(msg.ClientID, have, want)
		var b strings.Builder
		if err := testcase.EncodeAll(&b, tcs); err != nil {
			return err
		}
		return conn.Send(protocol.Message{Type: protocol.TypeTestcases, Payload: b.String(), Count: len(tcs)})

	case protocol.TypeResults:
		if err := s.checkClient(msg.ClientID); err != nil {
			return err
		}
		runs, err := core.DecodeRuns(strings.NewReader(msg.Payload))
		if err != nil {
			return fmt.Errorf("bad results payload: %w", err)
		}
		s.addResults(runs)
		return conn.Send(protocol.Message{Type: protocol.TypeAck, Count: len(runs)})

	default:
		return fmt.Errorf("unexpected message type %q", msg.Type)
	}
}

func (s *Server) checkClient(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.clients[id]; !ok {
		return fmt.Errorf("unknown client %q (register first)", id)
	}
	return nil
}
