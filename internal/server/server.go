// Package server implements the UUCS server (paper Figure 1): it stores
// testcases and results in text form, registers clients by handing out
// globally unique identifiers for their machine snapshots, serves
// growing random samples of testcases at hot sync, and collects uploaded
// results for the analysis phase (Figure 2).
//
// The server is built for the volunteer-computing fault model the
// paper's fleet ran under: clients vanish mid-request, uploads are
// retried after lost acks, and the server process itself restarts. Idle
// connections are reaped after IdleTimeout, retried upload batches are
// deduplicated by (client, sequence number), registration is idempotent
// by client nonce, and — when a state directory is attached — every
// accepted batch is journaled to disk before it is acknowledged, so a
// crash after an ack can never lose the acked results.
//
// The ingest path is built for fleet-scale concurrency: per-client
// state (registration lookups, upload-sequence dedup) lives in hash
// shards so concurrent clients contend only when they collide on a
// shard, and journal appends go through a group-commit writer
// (journal.go) that amortizes one fsync across every op that arrived
// while the previous flush was in flight. Mutations follow a strict
// apply-then-journal-then-ack order: state changes become visible in
// memory (with the journal op already enqueued) before the fsync, and
// the client ack waits for the fsync — so a snapshot taken under all
// state locks always covers every journaled byte below the recorded
// offset, which is what keeps live compaction (SaveState) lossless.
package server

import (
	"bytes"
	"fmt"
	"math"
	"net"
	"strings"
	"sync"
	"time"

	"uucs/internal/core"
	"uucs/internal/protocol"
	"uucs/internal/stats"
	"uucs/internal/testcase"
)

// numShards is the number of per-client state shards. A power of two so
// shard selection is a mask; 16 comfortably exceeds the core counts the
// server runs on, so shard collisions — not the shard count — bound
// contention.
const numShards = 16

// shard holds the per-client state for the client ids that hash to it.
// Lock ordering: regMu < tcMu < shard.mu (ascending index) < resMu;
// any path holding several must acquire them in that order.
type shard struct {
	mu sync.Mutex
	// clients maps registered client ids to their machine snapshots.
	clients map[string]protocol.Snapshot
	// lastSeq tracks, per client, the highest upload batch sequence
	// number whose journal op has been enqueued; retried batches at or
	// below it are duplicates.
	lastSeq map[string]uint64
	// locks counts acquisitions and waits counts the acquisitions that
	// found the mutex held — waits/locks is the USE utilization reading
	// for shard contention, exported via Stats and Telemetry.
	locks counter
	waits counter
}

// lock acquires the shard mutex, counting the acquisition and — when
// the fast path misses — the contended wait. TryLock then Lock costs
// one extra atomic on contention only, so the instrumentation cannot
// perturb the path it measures.
func (sh *shard) lock() {
	if !sh.mu.TryLock() {
		sh.waits.Add(1)
		sh.mu.Lock()
	}
	sh.locks.Add(1)
}

// Server is a UUCS server. All methods are safe for concurrent use; one
// goroutine is spawned per client connection.
//
// All server-side randomness (registration ids, testcase sampling) is
// derived from the seed and the request's own identity rather than
// drawn from a shared stream, so responses do not depend on the order
// concurrent clients happen to arrive in. This is what keeps a
// parallel fleet simulation bit-identical to a serial one.
type Server struct {
	// IdleTimeout bounds how long a connected client may stay silent
	// between requests (and how long a single request may take to
	// arrive or be answered). Zero means no limit. Set before Serve.
	IdleTimeout time.Duration

	// NodeID names this server when it runs as one node of a cluster
	// (internal/cluster). Purely observational: it labels the telemetry
	// snapshot so a cluster-wide USE verdict can say which node's
	// resource saturated. Empty for a standalone server. Set before
	// Serve.
	NodeID string

	// MaxProtocol caps the wire protocol version this server grants at
	// registration and accepts on the wire (0 means protocol.Version).
	// Setting protocol.V2 makes a v3-capable build behave as a pure v2
	// server — the rollback lever during a protocol rollout, and how
	// migration tests stand up "old" servers. Set before Serve.
	MaxProtocol int

	// JournalShip, when non-nil, is called by the journal writer after
	// each group-commit fsync with the batch's journal bytes, and the
	// batch's acks wait for it to return — semi-synchronous replication.
	// A cluster node points it at its follower's replica host, so every
	// acked op is on two disks before the client hears the ack; a ship
	// failure poisons the journal exactly like an fsync failure (stop
	// acking rather than ack unreplicated work). Set before OpenState.
	JournalShip func(segment []byte) error

	// JournalBatch caps how many ops one group-commit fsync may cover
	// (0 means the default, 64; 1 degenerates to PR 2's fsync-per-op
	// behavior and is the loadgen baseline). Set before OpenState.
	JournalBatch int
	// JournalDelay, when positive, lets the journal writer wait that
	// long for more ops before fsyncing a sub-capacity batch — trading
	// ack latency for fewer flushes. Zero (the default) never waits.
	// Set before OpenState.
	JournalDelay time.Duration
	// JournalSyncCost, when positive, stretches every journal fsync to
	// at least this long, modeling a slower storage device. Measurement
	// rigs use it to make group-commit behavior reproducible on
	// hardware whose real fsync is near-free; production leaves it
	// zero. Set before OpenState.
	JournalSyncCost time.Duration

	// JournalSegmentBytes, when positive, rotates the active journal
	// into a sealed, numbered segment file (journal-NNNNNN.seg) once its
	// size reaches this many bytes. Sealed segments are immutable:
	// restart replay scans them in parallel, and SaveState's compaction
	// deletes the fully covered ones instead of rewriting one growing
	// file. Zero (the default) keeps the legacy single-file journal.
	// Set before OpenState.
	JournalSegmentBytes int64
	// ReplayWorkers bounds the concurrent record-decode workers
	// LoadState uses when replaying state files (0 means GOMAXPROCS;
	// 1 decodes serially). Any value yields a bit-identical store — the
	// knob trades restart latency against restart CPU. Set before
	// OpenState.
	ReplayWorkers int

	// CrashAfterJournalOps is a crash-test hook (uucs-server
	// -crash-after): once that many ops have been written to the
	// journal file, the process SIGKILLs itself between the buffered
	// write and the fsync — the exact window in which appended bytes
	// are not yet durable and no ack has been sent. A crash.marker file
	// is dropped in the state directory first so the e2e harness can
	// verify the kill landed inside the window. Zero (the default)
	// disables the hook. Set before OpenState.
	CrashAfterJournalOps int

	seed uint64
	// start anchors Telemetry's uptime (lifetime busy fractions are
	// normalized by it).
	start time.Time

	// tcMu guards the testcase store (read-mostly: every sync samples
	// it, additions are rare).
	tcMu      sync.RWMutex
	testcases []*testcase.Testcase
	tcIndex   map[string]int

	// resMu guards the uploaded-run store (append-only).
	resMu   sync.Mutex
	results []*core.Run

	// regMu serializes registration: the nonce table and the id
	// assignment probe. Registration happens once per client lifetime,
	// so this stays cold while per-message paths run on the shards.
	regMu sync.Mutex
	// nonces maps a registration nonce to the id it was assigned, so a
	// retried registration is answered with the same id.
	nonces map[string]string

	shards [numShards]shard

	// stateMu guards the journal writer handle and state directory.
	stateMu  sync.Mutex
	jw       *journalWriter
	stateDir string

	connMu sync.Mutex
	ln     net.Listener
	wg     sync.WaitGroup
	conns  map[*protocol.Conn]struct{}
	closed bool

	stats ingestCounters

	// replayStats describes the most recent LoadState (cold-path health,
	// surfaced by Stats and Telemetry next to the ingest readings).
	replayStats replayStats
}

// New returns an empty server. seed drives the random testcase sampling.
func New(seed uint64) *Server {
	s := &Server{
		seed:    seed,
		start:   time.Now(),
		tcIndex: make(map[string]int),
		nonces:  make(map[string]string),
		conns:   make(map[*protocol.Conn]struct{}),
	}
	for i := range s.shards {
		s.shards[i].clients = make(map[string]protocol.Snapshot)
		s.shards[i].lastSeq = make(map[string]uint64)
	}
	return s
}

// shardFor returns the shard owning a client id.
func (s *Server) shardFor(clientID string) *shard {
	return &s.shards[hashString(0xcbf29ce484222325, clientID)&(numShards-1)]
}

// shardForBytes is shardFor for a borrowed client-id view (the v3
// frame path), avoiding the string materialization.
func (s *Server) shardForBytes(clientID []byte) *shard {
	return &s.shards[hashBytes(0xcbf29ce484222325, clientID)&(numShards-1)]
}

// maxProto returns the highest protocol version this server speaks.
func (s *Server) maxProto() int {
	if s.MaxProtocol != 0 {
		return s.MaxProtocol
	}
	return protocol.Version
}

// journal returns the attached journal writer, nil when detached.
func (s *Server) journal() *journalWriter {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	return s.jw
}

// AddTestcases adds testcases to the store; new testcases can be added
// to the server at any time and propagate to clients at their next hot
// sync. Duplicate IDs are replaced.
func (s *Server) AddTestcases(tcs ...*testcase.Testcase) error {
	return s.addTestcases(tcs, true)
}

func (s *Server) addTestcases(tcs []*testcase.Testcase, journal bool) error {
	for _, tc := range tcs {
		if err := tc.Validate(); err != nil {
			return err
		}
	}
	var op []byte
	jw := s.journal()
	if journal && jw != nil {
		var b strings.Builder
		if err := testcase.EncodeAll(&b, tcs); err != nil {
			return err
		}
		var err error
		op, err = marshalOp(journalOp{Op: opTestcases, Payload: b.String()})
		if err != nil {
			return err
		}
	}
	s.tcMu.Lock()
	var pending *journalReq
	if op != nil {
		// Enqueued under tcMu: state visible under this lock implies
		// the op is in the journal queue (the compaction invariant).
		pending = jw.enqueue(op)
	}
	for _, tc := range tcs {
		if i, ok := s.tcIndex[tc.ID]; ok {
			s.testcases[i] = tc
			continue
		}
		s.tcIndex[tc.ID] = len(s.testcases)
		s.testcases = append(s.testcases, tc)
	}
	s.tcMu.Unlock()
	if pending != nil {
		return <-pending.done
	}
	return nil
}

// TestcaseCount returns the number of stored testcases.
func (s *Server) TestcaseCount() int {
	s.tcMu.RLock()
	defer s.tcMu.RUnlock()
	return len(s.testcases)
}

// Results returns a copy of all uploaded run records.
func (s *Server) Results() []*core.Run {
	s.resMu.Lock()
	defer s.resMu.Unlock()
	out := make([]*core.Run, len(s.results))
	copy(out, s.results)
	return out
}

// ClientCount returns the number of registered clients.
func (s *Server) ClientCount() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.lock()
		n += len(sh.clients)
		sh.mu.Unlock()
	}
	return n
}

// Snapshot returns the registration snapshot for a client id.
func (s *Server) Snapshot(clientID string) (protocol.Snapshot, bool) {
	sh := s.shardFor(clientID)
	sh.lock()
	defer sh.mu.Unlock()
	snap, ok := sh.clients[clientID]
	return snap, ok
}

// hashMix folds v into an FNV-1a style running hash.
func hashMix(h, v uint64) uint64 {
	h ^= v
	h *= 0x100000001b3
	h ^= h >> 29
	return h
}

// hashString folds a string into a running hash byte by byte.
func hashString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = hashMix(h, uint64(s[i]))
	}
	return hashMix(h, uint64(len(s))+1)
}

// hashBytes is hashString over a byte slice (identical folding, so a
// borrowed id hashes to the same shard as its string form).
func hashBytes(h uint64, b []byte) uint64 {
	for i := 0; i < len(b); i++ {
		h = hashMix(h, uint64(b[i]))
	}
	return hashMix(h, uint64(len(b))+1)
}

// snapshotHash derives a 64-bit identity from a registration snapshot
// and the server seed.
func snapshotHash(seed uint64, snap protocol.Snapshot) uint64 {
	h := hashMix(seed, 0x75756373) // "uucs"
	h = hashString(h, snap.Hostname)
	h = hashString(h, snap.OS)
	h = hashMix(h, math.Float64bits(snap.CPUGHz))
	h = hashMix(h, math.Float64bits(snap.MemMB))
	h = hashMix(h, math.Float64bits(snap.DiskGB))
	return h
}

// DeriveClientID returns the identifier a server with the given seed
// assigns to a snapshot before any collision disambiguation. The
// derivation is shared with the cluster router, which uses it to route
// a registration by the client-id hash the id will have — so the same
// snapshot registers with the same id whether the fleet talks to one
// server or to an N-node cluster, and ids never depend on the topology.
func DeriveClientID(seed uint64, snap protocol.Snapshot) string {
	return fmt.Sprintf("uucs-%016x", snapshotHash(seed, snap))
}

// register assigns a globally unique identifier to a snapshot. The id
// derives from the snapshot content, so distinct machines get the same
// id regardless of registration order; repeated registrations of an
// identical snapshot are disambiguated deterministically by remixing.
// A non-empty nonce makes registration idempotent: if the nonce was
// seen before, its original id is returned, so a client retrying after
// a lost response does not register twice.
func (s *Server) register(snap protocol.Snapshot, nonce string) (string, error) {
	s.regMu.Lock()
	if nonce != "" {
		if id, ok := s.nonces[nonce]; ok {
			s.regMu.Unlock()
			return id, nil
		}
	}
	h := snapshotHash(s.seed, snap)
	var id string
	var home *shard
	for {
		id = fmt.Sprintf("uucs-%016x", h)
		home = s.shardFor(id)
		home.lock()
		_, taken := home.clients[id]
		if !taken {
			home.clients[id] = snap
			home.mu.Unlock()
			break
		}
		home.mu.Unlock()
		h = hashMix(h, 0x9e3779b97f4a7c15)
	}
	if nonce != "" {
		s.nonces[nonce] = id
	}
	var pending *journalReq
	jw := s.journal()
	if jw != nil {
		op, err := marshalOp(journalOp{Op: opClient, ID: id, Nonce: nonce, Snapshot: &snap})
		if err == nil {
			// Enqueued while regMu pins the nonce/id assignment, so any
			// state copy taken under regMu covers this op.
			pending = jw.enqueue(op)
		} else {
			pending = failedReq(err)
		}
	}
	s.regMu.Unlock()
	if pending != nil {
		if err := <-pending.done; err != nil {
			// The registration never became durable and was never
			// acked; withdraw it so a crashless server does not carry
			// state its journal cannot explain.
			s.regMu.Lock()
			home.lock()
			delete(home.clients, id)
			home.mu.Unlock()
			if nonce != "" && s.nonces[nonce] == id {
				delete(s.nonces, nonce)
			}
			s.regMu.Unlock()
			return "", err
		}
	}
	s.stats.registrations.Add(1)
	return id, nil
}

// failedReq returns a journalReq that already carries err.
func failedReq(err error) *journalReq {
	r := &journalReq{done: make(chan error, 1)}
	r.done <- err
	return r
}

// sample returns up to want testcases the client does not yet have,
// chosen uniformly at random — combined with the client's local random
// choice and Poisson execution times, this makes the fleet execute a
// random sample with respect to testcases, users, and times (§2). The
// shuffle stream derives from (seed, client, sync generation), never
// from shared state, so a client's sample sequence is the same whether
// the fleet runs serially or fully interleaved — and a retried sync
// with the same have-list receives the identical sample again.
func (s *Server) sample(clientID string, have map[string]bool, want int) []*testcase.Testcase {
	s.tcMu.RLock()
	defer s.tcMu.RUnlock()
	var candidates []*testcase.Testcase
	for _, tc := range s.testcases {
		if !have[tc.ID] {
			candidates = append(candidates, tc)
		}
	}
	if want >= len(candidates) {
		return candidates
	}
	h := hashString(hashMix(s.seed, 0x73616d70), clientID) // "samp"
	h = hashMix(h, uint64(len(have)))
	rng := stats.NewStream(h)
	rng.Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})
	return candidates[:want]
}

// addResults ingests an uploaded run batch. seq 0 marks an unsequenced
// (legacy) upload, applied unconditionally. For seq > 0 the batch is
// applied exactly once per client: a retried batch (seq at or below the
// last applied) reports dup without storing anything. The batch's
// journal op is enqueued before the shard lock is released and the ack
// waits for the fsync covering it, so an acked batch survives a crash.
func (s *Server) addResults(clientID string, seq uint64, payload string, runs []*core.Run) (dup bool, err error) {
	jw := s.journal()
	var op []byte
	if jw != nil {
		op, err = marshalOp(journalOp{Op: opResults, ID: clientID, Seq: seq, Payload: payload})
		if err != nil {
			return false, err
		}
	}
	sh := s.shardFor(clientID)
	sh.lock()
	if seq > 0 && seq <= sh.lastSeq[clientID] {
		sh.mu.Unlock()
		if jw != nil {
			// The original upload may still be inside a group commit
			// (its client timed out and retried); the dup ack must not
			// claim durability before that commit lands.
			if err := jw.barrier(); err != nil {
				return false, err
			}
		}
		s.stats.dupBatches.Add(1)
		return true, nil
	}
	var pending *journalReq
	if jw != nil {
		pending = jw.enqueue(op)
	}
	if seq > 0 {
		sh.lastSeq[clientID] = seq
	}
	s.resMu.Lock()
	s.results = append(s.results, runs...)
	s.resMu.Unlock()
	sh.mu.Unlock()
	if pending != nil {
		if err := <-pending.done; err != nil {
			return false, err
		}
	}
	s.stats.batches.Add(1)
	s.stats.runs.Add(uint64(len(runs)))
	return false, nil
}

// addResultsFrame is addResults for a borrowed v3 frame: identical
// dedup and ack semantics, but the journal record is the wire frame
// itself. The only copy on the path is the one that hands the frame
// bytes to the journal queue (which outlives the connection's read
// buffer); the journaled record is byte-identical to what the client
// sent — CRC trailer included — so replay re-validates it for free and
// replication ships it verbatim.
func (s *Server) addResultsFrame(f *protocol.Frame, runs []*core.Run) (dup bool, err error) {
	jw := s.journal()
	var op []byte
	if jw != nil {
		op = append([]byte(nil), f.Raw()...)
	}
	sh := s.shardForBytes(f.ClientID)
	sh.lock()
	if f.Seq > 0 && f.Seq <= sh.lastSeq[string(f.ClientID)] {
		sh.mu.Unlock()
		if jw != nil {
			// The original upload may still be inside a group commit
			// (its client timed out and retried); the dup ack must not
			// claim durability before that commit lands.
			if err := jw.barrier(); err != nil {
				return false, err
			}
		}
		s.stats.dupBatches.Add(1)
		return true, nil
	}
	var pending *journalReq
	if jw != nil {
		pending = jw.enqueue(op)
	}
	if f.Seq > 0 {
		sh.lastSeq[string(f.ClientID)] = f.Seq
	}
	s.resMu.Lock()
	s.results = append(s.results, runs...)
	s.resMu.Unlock()
	sh.mu.Unlock()
	if pending != nil {
		if err := <-pending.done; err != nil {
			return false, err
		}
	}
	s.stats.batches.Add(1)
	s.stats.runs.Add(uint64(len(runs)))
	return false, nil
}

// Serve accepts connections on ln until Close. It blocks.
func (s *Server) Serve(ln net.Listener) error {
	s.connMu.Lock()
	s.ln = ln
	s.connMu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.connMu.Lock()
			closed := s.closed
			s.connMu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		pc := protocol.NewConn(conn)
		pc.SetTimeout(s.IdleTimeout)
		s.connMu.Lock()
		if s.closed {
			s.connMu.Unlock()
			pc.Close()
			return nil
		}
		s.conns[pc] = struct{}{}
		s.connMu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(pc)
			s.connMu.Lock()
			delete(s.conns, pc)
			s.connMu.Unlock()
		}()
	}
}

// ListenAndServe listens on addr (e.g. "127.0.0.1:0") and serves in a
// background goroutine, returning the bound address.
func (s *Server) ListenAndServe(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go func() {
		_ = s.Serve(ln)
	}()
	return ln.Addr().String(), nil
}

// Close stops accepting, severs all live client connections (a crashing
// server does not say goodbye), flushes the journal, and waits for
// in-flight sessions.
func (s *Server) Close() error {
	s.connMu.Lock()
	s.closed = true
	ln := s.ln
	for pc := range s.conns {
		pc.Close()
	}
	s.connMu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	s.stateMu.Lock()
	jw := s.jw
	s.jw = nil
	s.stateMu.Unlock()
	if jw != nil {
		if cerr := jw.close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Crash stops the server the way a SIGKILL would, minus the process
// boundary: it severs every connection without a goodbye, refuses new
// ones, and abandons the journal writer without flushing its queue —
// queued ops error out un-synced and un-acked, exactly the state a
// power cut leaves behind. The journal file keeps whatever was already
// written (possibly a torn tail), so a restart or a promoted follower
// recovers from it like from a real crash. Cluster chaos tests use
// this to kill whole nodes in-process under the race detector.
func (s *Server) Crash() {
	s.connMu.Lock()
	s.closed = true
	ln := s.ln
	for pc := range s.conns {
		pc.Close()
	}
	s.connMu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.stateMu.Lock()
	jw := s.jw
	s.jw = nil
	s.stateMu.Unlock()
	if jw != nil {
		// Poison first so in-flight handlers blocked on a pending ack
		// are released with an error (never an ack), then wait for them.
		jw.abort()
	}
	s.wg.Wait()
}

// handle runs one client session: any number of requests until EOF,
// a broken connection, or an idle timeout. Each message is received as
// a borrowed frame; v3 frames dispatch zero-copy, v2 frames are
// materialized into a Message and take the original dispatch path.
// RecvFrame mirrors the request's framing onto the connection, so
// every reply (errors included) goes back the way the request came.
func (s *Server) handle(conn *protocol.Conn) {
	defer conn.Close()
	for {
		f, err := conn.RecvFrame()
		if err != nil {
			return // EOF, broken connection, or idle timeout
		}
		if f.WireVersion == protocol.V3 {
			s.stats.v3Msgs.Add(1)
		} else {
			s.stats.v2Msgs.Add(1)
		}
		if err := s.dispatchFrame(conn, f); err != nil {
			// Every in-band rejection — unknown client, undecodable
			// payload, bad version — lands here; the counter is the USE
			// errors reading for the wire.
			s.stats.rejects.Add(1)
			_ = conn.SendError(err)
		}
	}
}

// dispatchFrame routes one received frame. The hot path — a v3 results
// upload — runs entirely on borrowed views: the client id is checked
// and sharded as bytes, the runs decode straight from the payload view,
// and the journal stores the wire frame verbatim. Cold requests
// (register, sync) and all v2 frames materialize a Message and share
// the original dispatch.
func (s *Server) dispatchFrame(conn *protocol.Conn, f *protocol.Frame) error {
	if f.WireVersion == protocol.V3 {
		if s.maxProto() < protocol.V3 {
			return fmt.Errorf("protocol v3 disabled on this server (max v%d)", s.maxProto())
		}
		if f.Type == protocol.TypeResults {
			if err := s.checkClientBytes(f.ClientID); err != nil {
				return err
			}
			runs, err := core.DecodeRuns(bytes.NewReader(f.Payload))
			if err != nil {
				return fmt.Errorf("bad results payload: %w", err)
			}
			dup, err := s.addResultsFrame(f, runs)
			if err != nil {
				return err
			}
			return conn.Send(protocol.Message{Type: protocol.TypeAck, Count: len(runs), Seq: f.Seq, Dup: dup})
		}
	}
	msg, err := f.Message()
	if err != nil {
		return err
	}
	return s.dispatch(conn, msg)
}

func (s *Server) dispatch(conn *protocol.Conn, msg protocol.Message) error {
	switch msg.Type {
	case protocol.TypeRegister:
		if msg.Ver < protocol.V2 || msg.Ver > protocol.Version {
			return fmt.Errorf("unsupported protocol version %d", msg.Ver)
		}
		// Negotiate: grant the requested version, capped at what this
		// server speaks. The granted version rides the registered reply;
		// the client frames every subsequent message in it.
		ver := msg.Ver
		if mp := s.maxProto(); ver > mp {
			ver = mp
		}
		if msg.Snapshot == nil {
			return fmt.Errorf("register without snapshot")
		}
		if err := msg.Snapshot.Validate(); err != nil {
			return err
		}
		id, err := s.register(*msg.Snapshot, msg.Nonce)
		if err != nil {
			return err
		}
		return conn.Send(protocol.Message{Type: protocol.TypeRegistered, ClientID: id, Ver: ver})

	case protocol.TypeSync:
		if err := s.checkClient(msg.ClientID); err != nil {
			return err
		}
		want := msg.Want
		if want <= 0 {
			want = 16
		}
		have := make(map[string]bool, len(msg.Have))
		for _, id := range msg.Have {
			have[id] = true
		}
		tcs := s.sample(msg.ClientID, have, want)
		var b strings.Builder
		if err := testcase.EncodeAll(&b, tcs); err != nil {
			return err
		}
		return conn.Send(protocol.Message{Type: protocol.TypeTestcases, Payload: b.String(), Count: len(tcs)})

	case protocol.TypeResults:
		if err := s.checkClient(msg.ClientID); err != nil {
			return err
		}
		runs, err := core.DecodeRuns(strings.NewReader(msg.Payload))
		if err != nil {
			return fmt.Errorf("bad results payload: %w", err)
		}
		dup, err := s.addResults(msg.ClientID, msg.Seq, msg.Payload, runs)
		if err != nil {
			return err
		}
		return conn.Send(protocol.Message{Type: protocol.TypeAck, Count: len(runs), Seq: msg.Seq, Dup: dup})

	default:
		return fmt.Errorf("unexpected message type %q", msg.Type)
	}
}

func (s *Server) checkClient(id string) error {
	sh := s.shardFor(id)
	sh.lock()
	defer sh.mu.Unlock()
	if _, ok := sh.clients[id]; !ok {
		return fmt.Errorf("unknown client %q (register first)", id)
	}
	return nil
}

// checkClientBytes is checkClient for a borrowed id view; the map
// lookup through string(id) does not allocate.
func (s *Server) checkClientBytes(id []byte) error {
	sh := s.shardForBytes(id)
	sh.lock()
	defer sh.mu.Unlock()
	if _, ok := sh.clients[string(id)]; !ok {
		return fmt.Errorf("unknown client %q (register first)", id)
	}
	return nil
}

// marshalOp encodes one journal op as a newline-terminated JSON line,
// returning a private copy safe to hand to the journal writer queue.
func marshalOp(op journalOp) ([]byte, error) {
	return appendJSONLine(nil, op)
}
