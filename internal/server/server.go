// Package server implements the UUCS server (paper Figure 1): it stores
// testcases and results in text form, registers clients by handing out
// globally unique identifiers for their machine snapshots, serves
// growing random samples of testcases at hot sync, and collects uploaded
// results for the analysis phase (Figure 2).
//
// The server is built for the volunteer-computing fault model the
// paper's fleet ran under: clients vanish mid-request, uploads are
// retried after lost acks, and the server process itself restarts. Idle
// connections are reaped after IdleTimeout, retried upload batches are
// deduplicated by (client, sequence number), registration is idempotent
// by client nonce, and — when a state directory is attached — every
// accepted batch is journaled to disk before it is acknowledged, so a
// crash after an ack can never lose the acked results.
package server

import (
	"fmt"
	"math"
	"net"
	"os"
	"strings"
	"sync"
	"time"

	"uucs/internal/core"
	"uucs/internal/protocol"
	"uucs/internal/stats"
	"uucs/internal/testcase"
)

// Server is a UUCS server. All methods are safe for concurrent use; one
// goroutine is spawned per client connection.
//
// All server-side randomness (registration ids, testcase sampling) is
// derived from the seed and the request's own identity rather than
// drawn from a shared stream, so responses do not depend on the order
// concurrent clients happen to arrive in. This is what keeps a
// parallel fleet simulation bit-identical to a serial one.
type Server struct {
	// IdleTimeout bounds how long a connected client may stay silent
	// between requests (and how long a single request may take to
	// arrive or be answered). Zero means no limit. Set before Serve.
	IdleTimeout time.Duration

	mu        sync.Mutex
	seed      uint64
	testcases []*testcase.Testcase
	tcIndex   map[string]int
	results   []*core.Run
	clients   map[string]protocol.Snapshot
	// nonces maps a registration nonce to the id it was assigned, so a
	// retried registration is answered with the same id.
	nonces map[string]string
	// lastSeq tracks, per client, the highest applied upload batch
	// sequence number; retried batches at or below it are duplicates.
	lastSeq map[string]uint64
	// journal, when non-nil, is the append-only on-disk log: every
	// registration and accepted result batch is written (and synced to
	// the OS) before it is acknowledged.
	journal *os.File
	// stateDir is the attached state directory ("" when detached).
	stateDir string

	ln     net.Listener
	wg     sync.WaitGroup
	conns  map[*protocol.Conn]struct{}
	closed bool
}

// New returns an empty server. seed drives the random testcase sampling.
func New(seed uint64) *Server {
	return &Server{
		seed:    seed,
		tcIndex: make(map[string]int),
		clients: make(map[string]protocol.Snapshot),
		nonces:  make(map[string]string),
		lastSeq: make(map[string]uint64),
		conns:   make(map[*protocol.Conn]struct{}),
	}
}

// AddTestcases adds testcases to the store; new testcases can be added
// to the server at any time and propagate to clients at their next hot
// sync. Duplicate IDs are replaced.
func (s *Server) AddTestcases(tcs ...*testcase.Testcase) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.addTestcasesLocked(tcs, true)
}

func (s *Server) addTestcasesLocked(tcs []*testcase.Testcase, journal bool) error {
	for _, tc := range tcs {
		if err := tc.Validate(); err != nil {
			return err
		}
	}
	if journal && s.journal != nil {
		var b strings.Builder
		if err := testcase.EncodeAll(&b, tcs); err != nil {
			return err
		}
		if err := s.appendJournalLocked(journalOp{Op: opTestcases, Payload: b.String()}); err != nil {
			return err
		}
	}
	for _, tc := range tcs {
		if i, ok := s.tcIndex[tc.ID]; ok {
			s.testcases[i] = tc
			continue
		}
		s.tcIndex[tc.ID] = len(s.testcases)
		s.testcases = append(s.testcases, tc)
	}
	return nil
}

// TestcaseCount returns the number of stored testcases.
func (s *Server) TestcaseCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.testcases)
}

// Results returns a copy of all uploaded run records.
func (s *Server) Results() []*core.Run {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*core.Run, len(s.results))
	copy(out, s.results)
	return out
}

// ClientCount returns the number of registered clients.
func (s *Server) ClientCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.clients)
}

// Snapshot returns the registration snapshot for a client id.
func (s *Server) Snapshot(clientID string) (protocol.Snapshot, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap, ok := s.clients[clientID]
	return snap, ok
}

// hashMix folds v into an FNV-1a style running hash.
func hashMix(h, v uint64) uint64 {
	h ^= v
	h *= 0x100000001b3
	h ^= h >> 29
	return h
}

// hashString folds a string into a running hash byte by byte.
func hashString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = hashMix(h, uint64(s[i]))
	}
	return hashMix(h, uint64(len(s))+1)
}

// snapshotHash derives a 64-bit identity from a registration snapshot
// and the server seed.
func (s *Server) snapshotHash(snap protocol.Snapshot) uint64 {
	h := hashMix(s.seed, 0x75756373) // "uucs"
	h = hashString(h, snap.Hostname)
	h = hashString(h, snap.OS)
	h = hashMix(h, math.Float64bits(snap.CPUGHz))
	h = hashMix(h, math.Float64bits(snap.MemMB))
	h = hashMix(h, math.Float64bits(snap.DiskGB))
	return h
}

// register assigns a globally unique identifier to a snapshot. The id
// derives from the snapshot content, so distinct machines get the same
// id regardless of registration order; repeated registrations of an
// identical snapshot are disambiguated deterministically by remixing.
// A non-empty nonce makes registration idempotent: if the nonce was
// seen before, its original id is returned, so a client retrying after
// a lost response does not register twice.
func (s *Server) register(snap protocol.Snapshot, nonce string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if nonce != "" {
		if id, ok := s.nonces[nonce]; ok {
			return id, nil
		}
	}
	h := s.snapshotHash(snap)
	id := fmt.Sprintf("uucs-%016x", h)
	for {
		if _, taken := s.clients[id]; !taken {
			break
		}
		h = hashMix(h, 0x9e3779b97f4a7c15)
		id = fmt.Sprintf("uucs-%016x", h)
	}
	if s.journal != nil {
		op := journalOp{Op: opClient, ID: id, Nonce: nonce, Snapshot: &snap}
		if err := s.appendJournalLocked(op); err != nil {
			return "", err
		}
	}
	s.clients[id] = snap
	if nonce != "" {
		s.nonces[nonce] = id
	}
	return id, nil
}

// sample returns up to want testcases the client does not yet have,
// chosen uniformly at random — combined with the client's local random
// choice and Poisson execution times, this makes the fleet execute a
// random sample with respect to testcases, users, and times (§2). The
// shuffle stream derives from (seed, client, sync generation), never
// from shared state, so a client's sample sequence is the same whether
// the fleet runs serially or fully interleaved — and a retried sync
// with the same have-list receives the identical sample again.
func (s *Server) sample(clientID string, have map[string]bool, want int) []*testcase.Testcase {
	s.mu.Lock()
	defer s.mu.Unlock()
	var candidates []*testcase.Testcase
	for _, tc := range s.testcases {
		if !have[tc.ID] {
			candidates = append(candidates, tc)
		}
	}
	if want >= len(candidates) {
		return candidates
	}
	h := hashString(hashMix(s.seed, 0x73616d70), clientID) // "samp"
	h = hashMix(h, uint64(len(have)))
	rng := stats.NewStream(h)
	rng.Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})
	return candidates[:want]
}

// addResults ingests an uploaded run batch. seq 0 marks an unsequenced
// (legacy) upload, applied unconditionally. For seq > 0 the batch is
// applied exactly once per client: a retried batch (seq at or below the
// last applied) reports dup without storing anything. The batch is
// journaled before it is applied, so an acked batch survives a crash.
func (s *Server) addResults(clientID string, seq uint64, payload string, runs []*core.Run) (dup bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if seq > 0 && seq <= s.lastSeq[clientID] {
		return true, nil
	}
	if s.journal != nil {
		op := journalOp{Op: opResults, ID: clientID, Seq: seq, Payload: payload}
		if err := s.appendJournalLocked(op); err != nil {
			return false, err
		}
	}
	s.results = append(s.results, runs...)
	if seq > 0 {
		s.lastSeq[clientID] = seq
	}
	return false, nil
}

// Serve accepts connections on ln until Close. It blocks.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		pc := protocol.NewConn(conn)
		pc.SetTimeout(s.IdleTimeout)
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			pc.Close()
			return nil
		}
		s.conns[pc] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(pc)
			s.mu.Lock()
			delete(s.conns, pc)
			s.mu.Unlock()
		}()
	}
}

// ListenAndServe listens on addr (e.g. "127.0.0.1:0") and serves in a
// background goroutine, returning the bound address.
func (s *Server) ListenAndServe(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go func() {
		_ = s.Serve(ln)
	}()
	return ln.Addr().String(), nil
}

// Close stops accepting, severs all live client connections (a crashing
// server does not say goodbye), and waits for in-flight sessions.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	for pc := range s.conns {
		pc.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	s.mu.Lock()
	if s.journal != nil {
		s.journal.Close()
		s.journal = nil
	}
	s.mu.Unlock()
	return err
}

// handle runs one client session: any number of requests until EOF,
// a broken connection, or an idle timeout.
func (s *Server) handle(conn *protocol.Conn) {
	defer conn.Close()
	for {
		msg, err := conn.Recv()
		if err != nil {
			return // EOF, broken connection, or idle timeout
		}
		if err := s.dispatch(conn, msg); err != nil {
			_ = conn.SendError(err)
		}
	}
}

func (s *Server) dispatch(conn *protocol.Conn, msg protocol.Message) error {
	switch msg.Type {
	case protocol.TypeRegister:
		if msg.Ver != protocol.Version {
			return fmt.Errorf("unsupported protocol version %d", msg.Ver)
		}
		if msg.Snapshot == nil {
			return fmt.Errorf("register without snapshot")
		}
		if err := msg.Snapshot.Validate(); err != nil {
			return err
		}
		id, err := s.register(*msg.Snapshot, msg.Nonce)
		if err != nil {
			return err
		}
		return conn.Send(protocol.Message{Type: protocol.TypeRegistered, ClientID: id})

	case protocol.TypeSync:
		if err := s.checkClient(msg.ClientID); err != nil {
			return err
		}
		want := msg.Want
		if want <= 0 {
			want = 16
		}
		have := make(map[string]bool, len(msg.Have))
		for _, id := range msg.Have {
			have[id] = true
		}
		tcs := s.sample(msg.ClientID, have, want)
		var b strings.Builder
		if err := testcase.EncodeAll(&b, tcs); err != nil {
			return err
		}
		return conn.Send(protocol.Message{Type: protocol.TypeTestcases, Payload: b.String(), Count: len(tcs)})

	case protocol.TypeResults:
		if err := s.checkClient(msg.ClientID); err != nil {
			return err
		}
		runs, err := core.DecodeRuns(strings.NewReader(msg.Payload))
		if err != nil {
			return fmt.Errorf("bad results payload: %w", err)
		}
		dup, err := s.addResults(msg.ClientID, msg.Seq, msg.Payload, runs)
		if err != nil {
			return err
		}
		return conn.Send(protocol.Message{Type: protocol.TypeAck, Count: len(runs), Seq: msg.Seq, Dup: dup})

	default:
		return fmt.Errorf("unexpected message type %q", msg.Type)
	}
}

func (s *Server) checkClient(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.clients[id]; !ok {
		return fmt.Errorf("unknown client %q (register first)", id)
	}
	return nil
}
