package server

import (
	"net"
	"strings"
	"sync"
	"testing"

	"uucs/internal/core"
	"uucs/internal/protocol"
	"uucs/internal/stats"
	"uucs/internal/testcase"
)

func testSnapshot() protocol.Snapshot {
	return protocol.Snapshot{Hostname: "host", OS: "winxp", CPUGHz: 2, MemMB: 512, DiskGB: 80}
}

func startServer(t *testing.T, nTestcases int) (*Server, string) {
	t.Helper()
	s := New(42)
	if nTestcases > 0 {
		tcs, err := testcase.Generate("srv", testcase.GeneratorConfig{
			Count: nTestcases, Rate: 1, Duration: 30,
			BlankFraction: 0.1, QueueFraction: 0.5, MaxCPU: 10, MaxDisk: 7,
		}, stats.NewStream(1))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.AddTestcases(tcs...); err != nil {
			t.Fatal(err)
		}
	}
	addr, err := s.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, addr
}

func dialT(t *testing.T, addr string) *protocol.Conn {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	conn := protocol.NewConn(nc)
	t.Cleanup(func() { conn.Close() })
	return conn
}

func register(t *testing.T, conn *protocol.Conn) string {
	t.Helper()
	snap := testSnapshot()
	if err := conn.Send(protocol.Message{Type: protocol.TypeRegister, Ver: protocol.Version, Snapshot: &snap}); err != nil {
		t.Fatal(err)
	}
	resp, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if resp.Type != protocol.TypeRegistered || resp.ClientID == "" {
		t.Fatalf("registration failed: %+v", resp)
	}
	return resp.ClientID
}

func TestRegistration(t *testing.T) {
	s, addr := startServer(t, 0)
	conn := dialT(t, addr)
	id1 := register(t, conn)
	id2 := register(t, conn)
	if id1 == id2 {
		t.Error("ids not unique")
	}
	if s.ClientCount() != 2 {
		t.Errorf("client count = %d", s.ClientCount())
	}
	snap, ok := s.Snapshot(id1)
	if !ok || snap.Hostname != "host" {
		t.Errorf("snapshot lookup: %+v %v", snap, ok)
	}
	if _, ok := s.Snapshot("nope"); ok {
		t.Error("bogus id found")
	}
}

func TestRegistrationRejectsBadVersionAndSnapshot(t *testing.T) {
	_, addr := startServer(t, 0)
	conn := dialT(t, addr)
	snap := testSnapshot()
	if err := conn.Send(protocol.Message{Type: protocol.TypeRegister, Ver: 99, Snapshot: &snap}); err != nil {
		t.Fatal(err)
	}
	resp, _ := conn.Recv()
	if resp.Type != protocol.TypeError {
		t.Errorf("bad version accepted: %+v", resp)
	}
	if err := conn.Send(protocol.Message{Type: protocol.TypeRegister, Ver: protocol.Version}); err != nil {
		t.Fatal(err)
	}
	resp, _ = conn.Recv()
	if resp.Type != protocol.TypeError {
		t.Errorf("missing snapshot accepted: %+v", resp)
	}
}

func TestSyncSampling(t *testing.T) {
	_, addr := startServer(t, 50)
	conn := dialT(t, addr)
	id := register(t, conn)

	// First sync: ask for 10, get 10 distinct.
	if err := conn.Send(protocol.Message{Type: protocol.TypeSync, ClientID: id, Want: 10}); err != nil {
		t.Fatal(err)
	}
	resp, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if resp.Type != protocol.TypeTestcases || resp.Count != 10 {
		t.Fatalf("sync response: %+v", resp)
	}
	tcs, err := testcase.DecodeAll(strings.NewReader(resp.Payload))
	if err != nil {
		t.Fatal(err)
	}
	have := make([]string, 0, len(tcs))
	seen := map[string]bool{}
	for _, tc := range tcs {
		if seen[tc.ID] {
			t.Fatalf("duplicate testcase %s in sample", tc.ID)
		}
		seen[tc.ID] = true
		have = append(have, tc.ID)
	}

	// Second sync with `have`: no repeats.
	if err := conn.Send(protocol.Message{Type: protocol.TypeSync, ClientID: id, Have: have, Want: 45}); err != nil {
		t.Fatal(err)
	}
	resp, err = conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if resp.Count != 40 { // only 40 remain
		t.Fatalf("second sync count = %d, want 40", resp.Count)
	}
	more, err := testcase.DecodeAll(strings.NewReader(resp.Payload))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range more {
		if seen[tc.ID] {
			t.Fatalf("testcase %s resent despite have-list", tc.ID)
		}
	}
}

func TestSyncRequiresRegistration(t *testing.T) {
	_, addr := startServer(t, 5)
	conn := dialT(t, addr)
	if err := conn.Send(protocol.Message{Type: protocol.TypeSync, ClientID: "ghost", Want: 1}); err != nil {
		t.Fatal(err)
	}
	resp, _ := conn.Recv()
	if resp.Type != protocol.TypeError {
		t.Errorf("unregistered sync accepted: %+v", resp)
	}
}

func TestResultUpload(t *testing.T) {
	s, addr := startServer(t, 0)
	conn := dialT(t, addr)
	id := register(t, conn)

	runs := []*core.Run{{
		TestcaseID: "tc-1", Task: testcase.Quake, UserID: 7,
		Terminated: core.Discomfort, Offset: 42.5,
		PrimaryResource: testcase.CPU,
		Levels:          map[testcase.Resource]float64{testcase.CPU: 0.9},
		LastFive:        map[testcase.Resource][]float64{},
	}}
	var b strings.Builder
	if err := core.EncodeRuns(&b, runs, false); err != nil {
		t.Fatal(err)
	}
	if err := conn.Send(protocol.Message{Type: protocol.TypeResults, ClientID: id, Payload: b.String()}); err != nil {
		t.Fatal(err)
	}
	ack, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if ack.Type != protocol.TypeAck || ack.Count != 1 {
		t.Fatalf("upload ack: %+v", ack)
	}
	got := s.Results()
	if len(got) != 1 || got[0].TestcaseID != "tc-1" || got[0].Offset != 42.5 {
		t.Errorf("server results: %+v", got)
	}

	// Corrupt payloads are rejected in-band.
	if err := conn.Send(protocol.Message{Type: protocol.TypeResults, ClientID: id, Payload: "garbage\n"}); err != nil {
		t.Fatal(err)
	}
	resp, _ := conn.Recv()
	if resp.Type != protocol.TypeError {
		t.Errorf("garbage results accepted: %+v", resp)
	}
}

func TestUnknownMessageType(t *testing.T) {
	_, addr := startServer(t, 0)
	conn := dialT(t, addr)
	if err := conn.Send(protocol.Message{Type: "dance"}); err != nil {
		t.Fatal(err)
	}
	resp, _ := conn.Recv()
	if resp.Type != protocol.TypeError {
		t.Errorf("unknown type accepted: %+v", resp)
	}
}

func TestAddTestcasesReplacesDuplicates(t *testing.T) {
	s := New(1)
	tc := testcase.New("dup", 1)
	tc.Functions[testcase.CPU] = testcase.Blank(10, 1)
	if err := s.AddTestcases(tc); err != nil {
		t.Fatal(err)
	}
	tc2 := testcase.New("dup", 1)
	tc2.Functions[testcase.CPU] = testcase.Ramp(2, 10, 1)
	tc2.Shape = testcase.ShapeRamp
	if err := s.AddTestcases(tc2); err != nil {
		t.Fatal(err)
	}
	if s.TestcaseCount() != 1 {
		t.Errorf("count = %d after duplicate add", s.TestcaseCount())
	}
	bad := testcase.New("", 1)
	if err := s.AddTestcases(bad); err == nil {
		t.Error("invalid testcase accepted")
	}
}

func TestConcurrentClients(t *testing.T) {
	s, addr := startServer(t, 40)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			nc, err := net.Dial("tcp", addr)
			if err != nil {
				errs <- err
				return
			}
			conn := protocol.NewConn(nc)
			defer conn.Close()
			snap := testSnapshot()
			if err := conn.Send(protocol.Message{Type: protocol.TypeRegister, Ver: protocol.Version, Snapshot: &snap}); err != nil {
				errs <- err
				return
			}
			resp, err := conn.Recv()
			if err != nil || resp.Type != protocol.TypeRegistered {
				errs <- err
				return
			}
			if err := conn.Send(protocol.Message{Type: protocol.TypeSync, ClientID: resp.ClientID, Want: 5}); err != nil {
				errs <- err
				return
			}
			if _, err := conn.Recv(); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
	if s.ClientCount() != 8 {
		t.Errorf("client count = %d", s.ClientCount())
	}
}
