package server

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"uucs/internal/chaos"
	"uucs/internal/core"
	"uucs/internal/protocol"
)

// Seeded regression replay. scripts/e2e/regression_seeds.json records
// every seed a chaos run has ever caught a bug with; this test replays
// each one against the invariant its scenario protects. The file is the
// append-only memory of the chaos suite — EXPERIMENTS.md documents the
// "found a bad seed → append it" workflow — and this test is what makes
// an appended seed a permanent regression gate.

// seedsFile is the shared seed corpus, relative to this package.
const seedsFile = "../../scripts/e2e/regression_seeds.json"

type regressionSeed struct {
	Seed     uint64 `json:"seed"`
	Scenario string `json:"scenario"`
	Suite    string `json:"suite,omitempty"` // "" or "server" here; "cluster" replays in internal/cluster
	Found    string `json:"found"`
	Note     string `json:"note"`
}

func loadSeeds(t *testing.T) []regressionSeed {
	t.Helper()
	data, err := os.ReadFile(seedsFile)
	if err != nil {
		t.Fatalf("seed corpus: %v", err)
	}
	var corpus struct {
		Seeds []regressionSeed `json:"seeds"`
	}
	if err := json.Unmarshal(data, &corpus); err != nil {
		t.Fatalf("seed corpus does not parse: %v", err)
	}
	if len(corpus.Seeds) < 3 {
		t.Fatalf("seed corpus has %d entries, want at least 3", len(corpus.Seeds))
	}
	return corpus.Seeds
}

// scenarioReplays maps scenario names to their replay functions. An
// entry in the corpus naming an unknown scenario fails the test — a
// typo must not silently skip a regression.
var scenarioReplays = map[string]func(*testing.T, uint64){
	"torn-tail-crash":             replayTornTailCrash,
	"dup-ack-retry-storm":         replayDupAckRetryStorm,
	"partition-during-compaction": replayPartitionDuringCompaction,
}

func TestRegressionSeeds(t *testing.T) {
	for _, s := range loadSeeds(t) {
		s := s
		if s.Suite != "" && s.Suite != "server" {
			continue // another package's suite replays it (e.g. internal/cluster)
		}
		replay, ok := scenarioReplays[s.Scenario]
		if !ok {
			t.Errorf("seed %d names unknown scenario %q", s.Seed, s.Scenario)
			continue
		}
		t.Run(fmt.Sprintf("%s/seed=%d", s.Scenario, s.Seed), func(t *testing.T) {
			replay(t, s.Seed)
		})
	}
}

// replayTornTailCrash: a crash mid-append leaves a torn final journal
// line at a seed-chosen byte. Replay must drop exactly the torn op —
// keeping every acked batch — and the dropped op's sequence number must
// still be accepted on retry (the client was never acked, so it will
// resend).
func replayTornTailCrash(t *testing.T, seed uint64) {
	dir := t.TempDir()
	s := New(seed)
	if err := s.OpenState(dir); err != nil {
		t.Fatal(err)
	}
	id, err := s.register(testSnapshot(), fmt.Sprintf("torn-%d", seed))
	if err != nil {
		t.Fatal(err)
	}
	payload := uploadPayload(t)
	acked := 3 + int(seed%4)
	for seq := 1; seq <= acked; seq++ {
		if dup, err := s.addResults(id, uint64(seq), payload, mustDecodeRuns(t, payload)); err != nil || dup {
			t.Fatalf("seq %d: dup=%v err=%v", seq, dup, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// The crash: an op for seq acked+1 was being appended when the
	// process died, leaving a strict prefix of its line (no newline, no
	// closing brace) at the journal's tail. The client never got an ack.
	torn, err := marshalOp(journalOp{Op: opResults, ID: id, Seq: uint64(acked + 1), Payload: payload})
	if err != nil {
		t.Fatal(err)
	}
	cut := 1 + int(seed%uint64(len(torn)-3))
	jf, err := os.OpenFile(filepath.Join(dir, "journal.txt"), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jf.Write(torn[:cut]); err != nil {
		t.Fatal(err)
	}
	if err := jf.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart. The torn tail must be dropped, not rejected and not
	// half-applied.
	s2 := New(seed)
	if err := s2.OpenState(dir); err != nil {
		t.Fatalf("restart over torn journal: %v", err)
	}
	defer s2.Close()
	if got := len(s2.Results()); got != acked {
		t.Fatalf("restart holds %d runs, want %d acked (torn op must not count)", got, acked)
	}
	// The torn op's seq was never acked; its retry must apply...
	if dup, err := s2.addResults(id, uint64(acked+1), payload, mustDecodeRuns(t, payload)); err != nil || dup {
		t.Errorf("retry of torn seq %d: dup=%v err=%v, want fresh accept", acked+1, dup, err)
	}
	// ...while a retry of an acked batch still dedups.
	if dup, err := s2.addResults(id, uint64(acked), payload, mustDecodeRuns(t, payload)); err != nil || !dup {
		t.Errorf("retry of acked seq %d: dup=%v err=%v, want dup", acked, dup, err)
	}
}

func mustDecodeRuns(t *testing.T, payload string) []*core.Run {
	t.Helper()
	runs, err := core.DecodeRuns(strings.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	return runs
}

// retrySend sends m over a fresh connection until a non-error response
// arrives, redialing on transport faults — the same resend-same-seq
// discipline the real client uses. It fails the test if the fault
// schedule outlasts the attempt budget.
func retrySend(t *testing.T, dial func(string) (net.Conn, error), addr string, m protocol.Message) protocol.Message {
	t.Helper()
	for attempt := 0; attempt < 25; attempt++ {
		nc, err := dial(addr)
		if err != nil {
			continue
		}
		conn := protocol.NewConn(nc)
		if err := conn.Send(m); err != nil {
			conn.Close()
			continue
		}
		resp, err := conn.Recv()
		conn.Close()
		if err != nil {
			continue
		}
		return resp
	}
	t.Fatalf("no response for %s after 25 attempts", m.Type)
	return protocol.Message{}
}

// replayDupAckRetryStorm: seed-chosen ack reads are dropped after the
// server has applied the batch, so every retry is a duplicate of
// applied work. The storm must dedup to an exactly-once dataset, on the
// live server and again after a restart from its journal.
func replayDupAckRetryStorm(t *testing.T, seed uint64) {
	dir := t.TempDir()
	s := New(seed)
	if err := s.OpenState(dir); err != nil {
		t.Fatal(err)
	}
	nw := chaos.NewNetwork()
	ln, err := nw.Listen("storm")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)

	// Scripted drops on read positions: read#1 is the registration ack
	// (left alone so the storm targets uploads), read#2 is the first
	// upload's ack — guaranteed applied before the drop — and two more
	// positions are seed-chosen. Each drop forces a resend of an
	// already-applied batch.
	batches := 5 + int(seed%4)
	in := chaos.NewInjector(seed, chaos.Profile{}).Scripted(
		chaos.ScriptFault{Op: "read", N: 2, Kind: chaos.KindDrop},
		chaos.ScriptFault{Op: "read", N: 4 + int(seed%3), Kind: chaos.KindDrop},
		chaos.ScriptFault{Op: "read", N: 8 + int(seed>>4%3), Kind: chaos.KindDrop},
	)
	dial := in.WrapDial(nw.Dial)

	snap := testSnapshot()
	snap.Hostname = fmt.Sprintf("storm-host-%d", seed)
	reg := retrySend(t, dial, "storm", protocol.Message{
		Type: protocol.TypeRegister, Ver: protocol.Version,
		Snapshot: &snap, Nonce: fmt.Sprintf("storm-%d", seed),
	})
	if reg.Type != protocol.TypeRegistered {
		t.Fatalf("registration: %+v", reg)
	}
	payload := uploadPayload(t)
	for seq := 1; seq <= batches; seq++ {
		ack := retrySend(t, dial, "storm", protocol.Message{
			Type: protocol.TypeResults, ClientID: reg.ClientID, Payload: payload, Seq: uint64(seq),
		})
		if ack.Type != protocol.TypeAck || ack.Seq != uint64(seq) {
			t.Fatalf("seq %d: %+v", seq, ack)
		}
	}

	if in.Faults() == 0 {
		t.Fatal("storm injected no faults; it proves nothing")
	}

	// A dropped-ack retry is a duplicate only if the server applied the
	// batch before the connection died — a scheduling race the scripted
	// drops cannot pin. Resend an already-acked seq over the same faulty
	// dial (the canonical lost-ack retry) so dedup coverage is
	// guaranteed deterministically.
	dup := retrySend(t, dial, "storm", protocol.Message{
		Type: protocol.TypeResults, ClientID: reg.ClientID, Payload: payload, Seq: uint64(batches),
	})
	if dup.Type != protocol.TypeAck || dup.Seq != uint64(batches) {
		t.Fatalf("lost-ack retry of seq %d: %+v", batches, dup)
	}
	st := s.Stats()
	if st.DupBatches == 0 {
		t.Error("no retry was deduplicated — the lost-ack resend of an acked seq must dup")
	}
	if got := len(s.Results()); got != batches {
		t.Fatalf("live server holds %d runs, want %d exactly-once", got, batches)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// The journal must agree with memory: restart and recount.
	s2 := New(seed)
	if err := s2.LoadState(dir); err != nil {
		t.Fatal(err)
	}
	if got := len(s2.Results()); got != batches {
		t.Errorf("restarted server holds %d runs, want %d", got, batches)
	}
}

// replayPartitionDuringCompaction: seed-driven dial failures partition
// clients while SaveState compacts the live journal mid-upload-stream.
// Every acked batch must survive into the compacted state exactly once.
func replayPartitionDuringCompaction(t *testing.T, seed uint64) {
	dir := t.TempDir()
	s := New(seed)
	if err := s.OpenState(dir); err != nil {
		t.Fatal(err)
	}
	nw := chaos.NewNetwork()
	ln, err := nw.Listen("part")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)

	const clients = 3
	batches := 4 + int(seed%3)
	payload := uploadPayload(t)
	half := make(chan struct{}, clients)
	resume := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each client partitions independently: seed-driven dial
			// failures, bounded so the retry budget always outlasts them.
			in := chaos.NewInjector(seed+uint64(c)*1000003, chaos.Profile{DialFail: 0.35, MaxFaults: 5})
			dial := in.WrapDial(nw.Dial)
			snap := testSnapshot()
			snap.Hostname = fmt.Sprintf("part-host-%d", c)
			reg := retrySend(t, dial, "part", protocol.Message{
				Type: protocol.TypeRegister, Ver: protocol.Version,
				Snapshot: &snap, Nonce: fmt.Sprintf("part-%d-%d", seed, c),
			})
			if reg.Type != protocol.TypeRegistered {
				t.Errorf("client %d registration: %+v", c, reg)
				return
			}
			for seq := 1; seq <= batches; seq++ {
				if seq == batches/2+1 {
					// Hold at the midpoint so the compaction below runs
					// with half the stream journaled and half still to come.
					half <- struct{}{}
					<-resume
				}
				ack := retrySend(t, dial, "part", protocol.Message{
					Type: protocol.TypeResults, ClientID: reg.ClientID, Payload: payload, Seq: uint64(seq),
				})
				if ack.Type != protocol.TypeAck || ack.Seq != uint64(seq) {
					t.Errorf("client %d seq %d: %+v", c, seq, ack)
					return
				}
			}
		}()
	}
	for c := 0; c < clients; c++ {
		<-half
	}
	// Compact mid-stream: the snapshot covers the first half, the
	// journal carries what lands during and after the write.
	if err := s.SaveState(dir); err != nil {
		t.Fatal(err)
	}
	close(resume)
	wg.Wait()
	if err := s.SaveState(dir); err != nil {
		t.Fatal(err)
	}

	want := clients * batches
	liveFP := sortedRunFingerprints(t, s.Results())
	if got := len(s.Results()); got != want {
		t.Fatalf("live server holds %d runs, want %d exactly-once", got, want)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := New(seed)
	if err := s2.LoadState(dir); err != nil {
		t.Fatal(err)
	}
	if got := len(s2.Results()); got != want {
		t.Fatalf("reloaded state holds %d runs, want %d", got, want)
	}
	if got := sortedRunFingerprints(t, s2.Results()); got != liveFP {
		t.Error("reloaded dataset differs from the live server's")
	}
}

// sortedRunFingerprints canonically encodes a run set ignoring order
// (concurrent clients make append order nondeterministic).
func sortedRunFingerprints(t *testing.T, runs []*core.Run) string {
	t.Helper()
	fps := make([]string, len(runs))
	for i, r := range runs {
		var b strings.Builder
		if err := core.EncodeRuns(&b, []*core.Run{r}, true); err != nil {
			t.Fatal(err)
		}
		fps[i] = b.String()
	}
	sort.Strings(fps)
	return strings.Join(fps, "")
}
