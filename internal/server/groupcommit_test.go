package server

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"

	"uucs/internal/core"
)

// Group-commit tests: the batching behavior itself, and the crash
// window it introduces — the gap between a batch's buffered write and
// its fsync, where appended bytes exist only at the page cache's
// mercy. testHookBeforeJournalSync kills the server inside exactly
// that window.

// gateJournalSync installs a hook that blocks every journal fsync until
// release is called. entered receives one (non-blocking) signal each
// time a commit reaches the gate, so a test can know an op is inside
// the held-open commit before piling more into the queue — the
// deterministic way to force a multi-op group commit.
func gateJournalSync(t *testing.T) (entered <-chan struct{}, release func()) {
	t.Helper()
	ent := make(chan struct{}, 1)
	gate := make(chan struct{})
	testHookBeforeJournalSync = func() error {
		select {
		case ent <- struct{}{}:
		default:
		}
		<-gate
		return nil
	}
	t.Cleanup(func() { testHookBeforeJournalSync = nil })
	var once sync.Once
	return ent, func() { once.Do(func() { close(gate) }) }
}

// queueLen reports how many ops are waiting in the journal queue.
func queueLen(jw *journalWriter) int {
	jw.qmu.Lock()
	defer jw.qmu.Unlock()
	return len(jw.queue)
}

// openServer returns a journaling server on dir with k pre-registered
// clients.
func openServer(t *testing.T, dir string, k int) (*Server, []string) {
	t.Helper()
	s := New(1)
	if err := s.OpenState(dir); err != nil {
		t.Fatal(err)
	}
	ids := make([]string, k)
	for i := range ids {
		snap := testSnapshot()
		snap.Hostname = fmt.Sprintf("gc-host-%d", i)
		id, err := s.register(snap, fmt.Sprintf("gc-nonce-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	return s, ids
}

// TestGroupCommitCoalescesConcurrentAppends pins the mechanism the
// throughput win rides on: ops that queue while an fsync is in flight
// are flushed by ONE later fsync, not one each.
func TestGroupCommitCoalescesConcurrentAppends(t *testing.T) {
	const k = 8
	s, ids := openServer(t, t.TempDir(), k+1)
	defer s.Close()
	jw := s.journal()
	before := s.Stats()

	entered, release := gateJournalSync(t)
	// First upload enters commit and blocks on the gated fsync.
	firstDone := make(chan error, 1)
	go func() {
		_, err := s.addResults(ids[0], 1, encodeRuns(t, []*core.Run{testRun()}), []*core.Run{testRun()})
		firstDone <- err
	}()
	// Wait until the writer is inside the gate with the first op, then
	// pile k more uploads into the queue behind it.
	<-entered
	var wg sync.WaitGroup
	errs := make([]error, k)
	for i := 0; i < k; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[i] = s.addResults(ids[i+1], 1, encodeRuns(t, []*core.Run{testRun()}), []*core.Run{testRun()})
		}()
	}
	waitCond(t, func() bool { return queueLen(jw) == k })
	release()
	if err := <-firstDone; err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("queued upload %d: %v", i, err)
		}
	}

	after := s.Stats()
	if got := after.JournalOps - before.JournalOps; got != k+1 {
		t.Errorf("journal ops grew by %d, want %d", got, k+1)
	}
	// One fsync for the gated op, one for the entire queued batch.
	if got := after.JournalFsyncs - before.JournalFsyncs; got != 2 {
		t.Errorf("fsyncs grew by %d, want 2 (the k queued ops must share one)", got)
	}
	if after.MeanBatch <= 1 {
		t.Errorf("mean batch = %.1f, want > 1", after.MeanBatch)
	}
	if b := histBucket(k); after.BatchHist[b] == 0 {
		t.Errorf("batch histogram bucket %d empty; hist = %v", b, after.BatchHist)
	}
}

// waitCond polls cond, yielding the processor between probes.
func waitCond(t *testing.T, cond func() bool) {
	t.Helper()
	for i := 0; i < 1e6; i++ {
		if cond() {
			return
		}
		runtime.Gosched()
	}
	t.Fatal("condition never became true")
}

// TestDupAckWaitsForInFlightCommit pins the retry race the barrier
// closes: a client times out while its upload sits in an open group
// commit and retries; the dup ack must not be emitted until the
// original's fsync lands, or it would claim durability the disk does
// not have.
func TestDupAckWaitsForInFlightCommit(t *testing.T) {
	s, ids := openServer(t, t.TempDir(), 1)
	defer s.Close()
	jw := s.journal()
	runs := []*core.Run{testRun()}
	payload := encodeRuns(t, runs)

	entered, release := gateJournalSync(t)
	origDone := make(chan error, 1)
	go func() {
		_, err := s.addResults(ids[0], 1, payload, runs)
		origDone <- err
	}()
	// The original is inside the gated commit; its seq is already the
	// shard's high-water mark, so the retry takes the dup path.
	<-entered
	dupAcked := make(chan struct{})
	go func() {
		dup, err := s.addResults(ids[0], 1, payload, runs)
		if err != nil {
			t.Error(err)
		}
		if !dup {
			t.Error("retried in-flight batch not reported as dup")
		}
		close(dupAcked)
	}()
	// The dup ack must be parked on the barrier, not already emitted.
	waitCond(t, func() bool { return queueLen(jw) == 1 }) // the barrier op
	select {
	case <-dupAcked:
		t.Fatal("dup ack emitted before the original upload's fsync")
	default:
	}
	release()
	if err := <-origDone; err != nil {
		t.Fatal(err)
	}
	<-dupAcked
	if got := len(s.Results()); got != 1 {
		t.Errorf("results = %d, want 1 (retry double-counted)", got)
	}
}

// crashServer simulates a power cut inside the write-to-fsync window:
// the hook fails the fsync (so the op is never acked), and the server
// is abandoned without a graceful close.
func crashServer(t *testing.T, s *Server, id string, seq uint64, payload string, runs []*core.Run) {
	t.Helper()
	testHookBeforeJournalSync = func() error {
		return fmt.Errorf("injected crash before fsync")
	}
	defer func() { testHookBeforeJournalSync = nil }()
	if _, err := s.addResults(id, seq, payload, runs); err == nil {
		t.Fatal("upload acked though its fsync never ran")
	}
	// The writer is poisoned: nothing further may be acked on top of a
	// journal in an unknown state.
	if _, err := s.addResults(id, seq+1, payload, runs); err == nil {
		t.Fatal("upload acked on a poisoned journal")
	}
	if _, err := s.register(testSnapshot(), "post-crash-nonce"); err == nil {
		t.Fatal("registration acked on a poisoned journal")
	}
	_ = s.Close()
}

// TestCrashBeforeFsyncUnackedWriteLost: the batch's bytes reached the
// file but not the platter; the crash loses them. The client never got
// an ack, so its retry against the restarted server must apply the
// batch exactly once.
func TestCrashBeforeFsyncUnackedWriteLost(t *testing.T) {
	dir := t.TempDir()
	s, ids := openServer(t, dir, 1)
	runs := []*core.Run{testRun()}
	payload := encodeRuns(t, runs)
	if _, err := s.addResults(ids[0], 1, payload, runs); err != nil {
		t.Fatal(err)
	}
	jpath := filepath.Join(dir, journalFile)
	fi, err := os.Stat(jpath)
	if err != nil {
		t.Fatal(err)
	}
	acked := fi.Size()

	crashServer(t, s, ids[0], 2, payload, runs)
	// The unsynced append evaporates with the page cache.
	if err := os.Truncate(jpath, acked); err != nil {
		t.Fatal(err)
	}

	restored := New(1)
	if err := restored.OpenState(dir); err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if got := len(restored.Results()); got != 1 {
		t.Fatalf("restored results = %d, want 1 (only the acked batch)", got)
	}
	// Client retry of the never-acked batch: applied exactly once.
	dup, err := restored.addResults(ids[0], 2, payload, runs)
	if err != nil {
		t.Fatal(err)
	}
	if dup {
		t.Error("retry of a lost unacked batch reported as dup")
	}
	if got := len(restored.Results()); got != 2 {
		t.Errorf("results after retry = %d, want 2", got)
	}
}

// TestCrashBeforeFsyncUnackedWriteSurvived: same crash, but the page
// cache happened to flush the append before power died. The restart
// replays it, so the client's retry must be detected as a duplicate —
// an unacked batch may exist on disk, but it must never be counted
// twice.
func TestCrashBeforeFsyncUnackedWriteSurvived(t *testing.T) {
	dir := t.TempDir()
	s, ids := openServer(t, dir, 1)
	runs := []*core.Run{testRun()}
	payload := encodeRuns(t, runs)
	if _, err := s.addResults(ids[0], 1, payload, runs); err != nil {
		t.Fatal(err)
	}
	crashServer(t, s, ids[0], 2, payload, runs)

	restored := New(1)
	if err := restored.OpenState(dir); err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	// The surviving write replayed: both batches present.
	if got := len(restored.Results()); got != 2 {
		t.Fatalf("restored results = %d, want 2 (surviving write dropped)", got)
	}
	dup, err := restored.addResults(ids[0], 2, payload, runs)
	if err != nil {
		t.Fatal(err)
	}
	if !dup {
		t.Error("retry of a surviving batch not reported as dup")
	}
	if got := len(restored.Results()); got != 2 {
		t.Errorf("results after retry = %d, want 2 (double-counted)", got)
	}
}

// TestCrashBeforeFsyncTornWrite: the crash tears the unsynced append
// mid-line. The restart must tolerate the torn tail, and the retry
// applies the batch exactly once.
func TestCrashBeforeFsyncTornWrite(t *testing.T) {
	dir := t.TempDir()
	s, ids := openServer(t, dir, 1)
	runs := []*core.Run{testRun()}
	payload := encodeRuns(t, runs)
	if _, err := s.addResults(ids[0], 1, payload, runs); err != nil {
		t.Fatal(err)
	}
	jpath := filepath.Join(dir, journalFile)
	fi, err := os.Stat(jpath)
	if err != nil {
		t.Fatal(err)
	}
	acked := fi.Size()

	crashServer(t, s, ids[0], 2, payload, runs)
	// Half the unsynced append made it out: tear it mid-line.
	fi2, err := os.Stat(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if fi2.Size() <= acked {
		t.Fatal("crash left no unsynced bytes to tear")
	}
	if err := os.Truncate(jpath, acked+(fi2.Size()-acked)/2); err != nil {
		t.Fatal(err)
	}

	restored := New(1)
	if err := restored.OpenState(dir); err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if got := len(restored.Results()); got != 1 {
		t.Fatalf("restored results = %d, want 1 (torn tail misread)", got)
	}
	dup, err := restored.addResults(ids[0], 2, payload, runs)
	if err != nil {
		t.Fatal(err)
	}
	if dup {
		t.Error("retry of a torn unacked batch reported as dup")
	}
	if got := len(restored.Results()); got != 2 {
		t.Errorf("results after retry = %d, want 2", got)
	}
}

// TestJournalBatchOneMatchesPR2Baseline: JournalBatch = 1 degenerates
// to fsync-per-op — the loadgen comparison baseline — and must behave
// identically from the durability suite's point of view.
func TestJournalBatchOneMatchesPR2Baseline(t *testing.T) {
	dir := t.TempDir()
	s := New(1)
	s.JournalBatch = 1
	if err := s.OpenState(dir); err != nil {
		t.Fatal(err)
	}
	id, err := s.register(testSnapshot(), "n1")
	if err != nil {
		t.Fatal(err)
	}
	runs := []*core.Run{testRun()}
	for seq := uint64(1); seq <= 3; seq++ {
		if _, err := s.addResults(id, seq, encodeRuns(t, runs), runs); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.JournalFsyncs < st.JournalOps {
		t.Errorf("batch=1: %d ops over %d fsyncs; want one fsync per op", st.JournalOps, st.JournalFsyncs)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	restored := New(1)
	if err := restored.LoadState(dir); err != nil {
		t.Fatal(err)
	}
	if got := len(restored.Results()); got != 3 {
		t.Errorf("restored results = %d, want 3", got)
	}
}
