// Command uucs-loadgen measures UUCS server ingest throughput with a
// closed-loop load: K concurrent clients over loopback TCP (or the
// in-memory chaos transport), each uploading its next result batch the
// moment the previous ack arrives. It reports batches/sec, ack latency
// quantiles, the journal's group-commit batch-size histogram, and
// verifies that no acked batch was lost or double-counted.
//
// Usage:
//
//	uucs-loadgen -clients 32 -duration 5s -state ./lgstate
//	uucs-loadgen -clients 32 -duration 5s -compare journal    # group commit vs fsync-per-op
//	uucs-loadgen -clients 32 -duration 5s -compare protocol   # v2 JSON vs v3 binary framing
//	uucs-loadgen -clients 32 -protocol v2                     # pin the fleet to the v2 framing
//	uucs-loadgen -clients 8 -duration 2s -smoke               # CI: nonzero exit on lost/dup
//
//	# cluster mode: the same fleet through a routed, replicated N-node
//	# cluster, optionally SIGKILLing a node mid-upload; verification
//	# merges every node and replica journal and demands exactly-once
//	uucs-loadgen -nodes n1,n2,n3 -batches 500 -smoke
//	uucs-loadgen -nodes n1,n2,n3 -kill-node n2 -batches 500 -smoke
//
// With -compare, the rig runs twice against fresh state directories and
// prints the throughput ratio: "journal" pits fsync-per-op
// (-journal-batch 1, the pre-group-commit behavior) against the
// configured batching; "protocol" pits the v2 JSON framing against the
// v3 binary framing at otherwise identical settings.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"uucs/internal/loadgen"
	"uucs/internal/protocol"
	"uucs/internal/telemetry"
)

func main() {
	var (
		clients   = flag.Int("clients", 32, "closed-loop client concurrency")
		duration  = flag.Duration("duration", 5*time.Second, "measurement window")
		batches   = flag.Int("batches", 0, "fixed total batch budget instead of a timed window")
		runsPer   = flag.Int("runs-per-batch", 3, "run records per upload batch")
		netKind   = flag.String("net", "tcp", "transport: tcp (loopback) or mem (in-memory)")
		addr      = flag.String("addr", "", "drive an external server at this address instead of in-process")
		stateDir  = flag.String("state", "", "server state directory (default: a fresh temp dir; 'none' disables journaling)")
		jBatch    = flag.Int("journal-batch", 0, "max ops per group-commit fsync (0 = server default, 1 = fsync per op)")
		jDelay    = flag.Duration("journal-delay", 0, "group-commit accumulation window (0 = never wait)")
		fsyncCost = flag.Duration("fsync-cost", 0, "modeled storage device: stretch each fsync to at least this long (e.g. 8ms for a paper-era disk)")
		jSegment  = flag.Int64("journal-segment-bytes", 0, "seal the journal into numbered segments at this size (0 = single-file journal)")
		rWorkers  = flag.Int("replay-workers", 0, "restart-replay decode workers (0 = GOMAXPROCS, 1 = serial)")
		seed      = flag.Uint64("seed", 1, "server sampling seed")
		proto     = flag.String("protocol", "v3", "fleet wire framing: v2 (JSON) or v3 (binary)")
		compare   = flag.String("compare", "", `also run a baseline and print the speedup: "journal" (fsync-per-op) or "protocol" (v2 framing)`)
		smoke     = flag.Bool("smoke", false, "exit nonzero if any batch was lost or duplicated")
		jsonOut   = flag.Bool("json", false, "print reports as JSON")
		nodesCSV  = flag.String("nodes", "", "cluster mode: comma-separated node ids; the fleet drives an in-process routed cluster")
		killNode  = flag.String("kill-node", "", "cluster mode: SIGKILL-equivalently crash this node mid-run")
		killAfter = flag.Int("kill-after", 0, "cluster mode: acked batches before the kill (default: half the budget)")
	)
	flag.Parse()

	var nodes []string
	for _, n := range strings.Split(*nodesCSV, ",") {
		if n = strings.TrimSpace(n); n != "" {
			nodes = append(nodes, n)
		}
	}
	ver, err := parseProtocol(*proto)
	if err != nil {
		fatal(err)
	}
	base := loadgen.Config{
		Clients: *clients, Duration: *duration, Batches: *batches,
		RunsPerBatch: *runsPer, Net: *netKind, Addr: *addr,
		JournalBatch: *jBatch, JournalDelay: *jDelay,
		FsyncCost: *fsyncCost, JournalSegmentBytes: *jSegment,
		ReplayWorkers: *rWorkers, Seed: *seed, Protocol: ver,
		Nodes: nodes, KillNode: *killNode, KillAfterBatches: *killAfter,
	}

	run := func(label string, cfg loadgen.Config) *loadgen.Report {
		switch {
		case cfg.Addr != "":
			// External server: its state handling is its own business.
		case *stateDir == "none":
		case *stateDir != "":
			cfg.StateDir = *stateDir
		default:
			dir, err := os.MkdirTemp("", "uucs-loadgen-")
			if err != nil {
				fatal(err)
			}
			defer os.RemoveAll(dir)
			cfg.StateDir = dir
		}
		rep, err := loadgen.Run(cfg)
		if err != nil {
			fatal(err)
		}
		print(label, rep, *jsonOut)
		if *smoke && rep.Verified() && (rep.Lost > 0 || rep.Duplicated > 0) {
			fmt.Fprintf(os.Stderr, "uucs-loadgen: FAILED: %d lost, %d duplicated batches\n", rep.Lost, rep.Duplicated)
			os.Exit(1)
		}
		if *smoke && !rep.Verified() {
			fmt.Fprintln(os.Stderr, "uucs-loadgen: -smoke needs an in-process server to verify against")
			os.Exit(1)
		}
		return rep
	}

	switch *compare {
	case "":
		run("ingest", base)
	case "journal", "true": // "true": the flag's old boolean spelling
		baseline := base
		baseline.JournalBatch = 1
		baseCfg := run("fsync-per-op", baseline)
		groupCfg := run("group-commit", base)
		speedup(baseCfg, groupCfg, base.Clients)
	case "protocol":
		baseline := base
		baseline.Protocol = protocol.V2
		v3 := base
		v3.Protocol = protocol.V3
		baseCfg := run("v2-json", baseline)
		v3Cfg := run("v3-binary", v3)
		speedup(baseCfg, v3Cfg, base.Clients)
	default:
		fatal(fmt.Errorf("unknown -compare mode %q (want journal or protocol)", *compare))
	}
}

// parseProtocol maps the -protocol flag to a wire version.
func parseProtocol(s string) (int, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "v3", "3":
		return protocol.V3, nil
	case "v2", "2":
		return protocol.V2, nil
	}
	return 0, fmt.Errorf("unknown -protocol %q (want v2 or v3)", s)
}

// speedup prints the throughput ratio of a comparison pair.
func speedup(base, tuned *loadgen.Report, clients int) {
	if base.BatchesPerSec > 0 {
		fmt.Printf("\nspeedup: %.1fx (%.0f -> %.0f batches/sec at %d clients)\n",
			tuned.BatchesPerSec/base.BatchesPerSec,
			base.BatchesPerSec, tuned.BatchesPerSec, clients)
	}
}

func print(label string, rep *loadgen.Report, asJSON bool) {
	if asJSON {
		buf, err := json.MarshalIndent(struct {
			Label string `json:"label"`
			*loadgen.Report
		}{label, rep}, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(buf))
		return
	}
	fmt.Printf("%s: %d clients (protocol v%d), %d batches (%d runs) in %v = %.0f batches/sec\n",
		label, rep.Clients, rep.Protocol, rep.Batches, rep.Runs, rep.Elapsed.Round(time.Millisecond), rep.BatchesPerSec)
	fmt.Printf("%s: ack latency p50 %v  p90 %v  p99 %v  max %v\n",
		label, rep.LatP50.Round(time.Microsecond), rep.LatP90.Round(time.Microsecond),
		rep.LatP99.Round(time.Microsecond), rep.LatMax.Round(time.Microsecond))
	if st := rep.Server; st != nil {
		fmt.Printf("%s: protocol mix: %d v2 / %d v3 messages\n", label, st.V2Msgs, st.V3Msgs)
		if st.JournalFsyncs > 0 {
			fmt.Printf("%s: journal %d ops / %d fsyncs (mean batch %.1f), %d bytes\n",
				label, st.JournalOps, st.JournalFsyncs, st.MeanBatch, st.JournalBytes)
			fmt.Printf("%s: batch-size histogram (1, 2, ≤4, ≤8, ...): %v\n", label, st.BatchHist)
		}
		if st.SegmentsSealed > 0 {
			fmt.Printf("%s: journal segments sealed: %d\n", label, st.SegmentsSealed)
		}
		if st.ReplayNanos > 0 {
			fmt.Printf("%s: restart replay: %d records / %d files (%d bytes) in %v\n",
				label, st.ReplayRecords, st.ReplayFiles, st.ReplayBytes,
				time.Duration(st.ReplayNanos).Round(time.Microsecond))
		}
		fmt.Printf("%s: verification: %d lost, %d duplicated\n", label, rep.Lost, rep.Duplicated)
	}
	if st := rep.Merge; st != nil {
		fmt.Printf("%s: cluster merge: %d sources, %d batches kept, %d replica duplicates dropped, %d spills (%d bytes), %d failovers\n",
			label, st.Sources, st.Batches, st.DupBatches, st.Spills, st.SpilledBytes, rep.Failovers)
		fmt.Printf("%s: verification: %d lost, %d duplicated\n", label, rep.Lost, rep.Duplicated)
	}
	if rep.Telemetry != nil {
		// The USE snapshot closes every run: if throughput regressed,
		// the saturated-resource verdict says which resource to blame.
		fmt.Printf("\n%s: ", label)
		if err := telemetry.WriteTable(os.Stdout, rep.Telemetry); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "uucs-loadgen:", err)
	os.Exit(2)
}
