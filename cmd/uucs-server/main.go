// Command uucs-server runs a UUCS server: it loads a testcase store,
// listens for client registrations and hot syncs, and periodically
// writes collected results to disk for the analysis phase.
//
// Usage:
//
//	uucs-server -addr 127.0.0.1:7060 -testcases tcs.txt -out results.txt
//	uucs-server -generate 2000        # self-populate like the paper's server
//	uucs-server -state ./srvstate -idle-timeout 2m
//
// With -state, every accepted registration and result batch is
// journaled to disk before it is acknowledged, so a crash between
// flushes loses nothing; the journal is compacted into a snapshot on
// each flush and at shutdown. Journal appends are group-committed: ops
// arriving while a flush is in flight share the next fsync
// (-journal-batch caps the batch, -journal-delay optionally waits for
// more ops). -idle-timeout disconnects clients that go silent
// mid-conversation (0 keeps them forever). With -debug-addr, the
// /debug/vars page exposes the ingest counters (uucs_ingest: batches,
// journal fsyncs, group-commit batch histogram, per-shard lock spread)
// and /telemetry serves the USE-method snapshot — utilization,
// saturation and errors per ingest resource, with a 0-100 health score
// naming the saturated resource (watch it live with uucs-top -w).
// -crash-after N is the e2e chaos hook: the process SIGKILLs itself
// between the Nth journaled op's buffered write and its fsync.
package main

import (
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the debug listener
	"os"
	"os/signal"
	"syscall"
	"time"

	"uucs/internal/core"
	"uucs/internal/protocol"
	"uucs/internal/server"
	"uucs/internal/stats"
	"uucs/internal/telemetry"
	"uucs/internal/testcase"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7060", "listen address")
		tcsPath  = flag.String("testcases", "", "testcase store to load (text format)")
		generate = flag.Int("generate", 0, "generate this many random testcases instead of loading")
		outPath  = flag.String("out", "uucs-results.txt", "file to write collected results to")
		seed     = flag.Uint64("seed", 1, "sampling seed")
		interval = flag.Duration("flush", 30*time.Second, "result flush interval")
		stateDir = flag.String("state", "", "state directory: restore on start, journal live, compact on flush/shutdown")
		nodeID   = flag.String("node-id", "", "cluster node id: names this node in /telemetry snapshots when it serves one partition of a routed cluster (see uucs-router)")
		idle     = flag.Duration("idle-timeout", 0, "disconnect clients silent for this long (0 = never)")
		debug    = flag.String("debug-addr", "", "serve net/http/pprof, expvar and /telemetry on this address (off when empty)")
		jBatch   = flag.Int("journal-batch", 0, "max ops per group-commit fsync (0 = default, 1 = fsync per op)")
		jDelay   = flag.Duration("journal-delay", 0, "wait this long for more ops before fsyncing a sub-capacity batch (0 = never wait)")
		jSync    = flag.Duration("fsync-cost", 0, "modeled storage device: stretch each journal fsync to at least this long (0 = real device)")
		jSegment = flag.Int64("journal-segment-bytes", 0, "seal the journal into a numbered segment file once it reaches this size; sealed segments replay in parallel at restart and compaction deletes covered ones instead of rewriting (0 = single-file journal)")
		rWorkers = flag.Int("replay-workers", 0, "parallel record-decode workers for restart replay (0 = GOMAXPROCS, 1 = serial; the restored state is bit-identical at any setting)")
		crashAft = flag.Int("crash-after", 0, "TEST HOOK: SIGKILL this process between the Nth journaled op's write and its fsync (requires -state; 0 = off)")
		maxProto = flag.String("max-protocol", "v3", "highest wire protocol to grant at negotiation: v3, or v2 to roll the fleet back to the JSON framing")
	)
	flag.Parse()

	srv := server.New(*seed)
	srv.NodeID = *nodeID
	switch *maxProto {
	case "", "v3", "3":
		srv.MaxProtocol = protocol.V3
	case "v2", "2":
		srv.MaxProtocol = protocol.V2
	default:
		fatal(fmt.Errorf("unknown -max-protocol %q (want v2 or v3)", *maxProto))
	}
	if *debug != "" {
		// The default mux already carries /debug/pprof and /debug/vars;
		// add the server's own gauges next to the runtime's. The ingest
		// block exposes the group-commit counters: watch
		// journal_ops/journal_fsyncs (the amortization ratio), the
		// batch-size histogram, and the per-shard lock spread.
		expvar.Publish("uucs_clients", expvar.Func(func() any { return srv.ClientCount() }))
		expvar.Publish("uucs_results", expvar.Func(func() any { return len(srv.Results()) }))
		expvar.Publish("uucs_testcases", expvar.Func(func() any { return srv.TestcaseCount() }))
		expvar.Publish("uucs_ingest", expvar.Func(func() any { return srv.Stats() }))
		// /telemetry is the USE-organized view of the same collectors:
		// a table for humans (and uucs-top -w), ?format=json for tools,
		// with the 0-100 health score naming the saturated resource.
		http.Handle("/telemetry", telemetry.Handler(srv.Telemetry))
		ln, err := net.Listen("tcp", *debug)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("uucs-server: debug listener on http://%s/debug/pprof (telemetry on /telemetry)\n", ln.Addr())
		go func() {
			if err := http.Serve(ln, nil); err != nil {
				fmt.Fprintln(os.Stderr, "uucs-server: debug listener:", err)
			}
		}()
	}
	srv.IdleTimeout = *idle
	srv.JournalBatch = *jBatch
	srv.JournalDelay = *jDelay
	srv.JournalSyncCost = *jSync
	srv.JournalSegmentBytes = *jSegment
	srv.ReplayWorkers = *rWorkers
	srv.CrashAfterJournalOps = *crashAft
	if *crashAft > 0 && *stateDir == "" {
		fatal(fmt.Errorf("-crash-after needs -state (the crash window is the journal fsync)"))
	}
	if *stateDir != "" {
		// OpenState restores AND keeps a journal: state survives even a
		// kill -9 between flushes.
		if err := srv.OpenState(*stateDir); err != nil {
			fatal(err)
		}
		fmt.Printf("uucs-server: restored %d testcases, %d results, %d clients from %s\n",
			srv.TestcaseCount(), len(srv.Results()), srv.ClientCount(), *stateDir)
	}
	switch {
	case *tcsPath != "":
		f, err := os.Open(*tcsPath)
		if err != nil {
			fatal(err)
		}
		tcs, err := testcase.DecodeAll(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		if err := srv.AddTestcases(tcs...); err != nil {
			fatal(err)
		}
	case *generate > 0:
		cfg := testcase.DefaultGeneratorConfig()
		cfg.Count = *generate
		tcs, err := testcase.Generate("inet", cfg, stats.NewStream(*seed))
		if err != nil {
			fatal(err)
		}
		if err := srv.AddTestcases(tcs...); err != nil {
			fatal(err)
		}
	default:
		if srv.TestcaseCount() == 0 {
			fmt.Fprintln(os.Stderr, "uucs-server: warning: empty testcase store (use -testcases, -generate, or -state)")
		}
	}

	bound, err := srv.ListenAndServe(*addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("uucs-server: listening on %s with %d testcases\n", bound, srv.TestcaseCount())

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	tick := time.NewTicker(*interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			if err := flush(srv, *outPath); err != nil {
				fmt.Fprintln(os.Stderr, "uucs-server: flush:", err)
			}
			if *stateDir != "" {
				if err := srv.SaveState(*stateDir); err != nil {
					fmt.Fprintln(os.Stderr, "uucs-server: persist:", err)
				}
			}
		case <-stop:
			if err := flush(srv, *outPath); err != nil {
				fmt.Fprintln(os.Stderr, "uucs-server: final flush:", err)
			}
			if *stateDir != "" {
				if err := srv.SaveState(*stateDir); err != nil {
					fmt.Fprintln(os.Stderr, "uucs-server: persist:", err)
				}
			}
			if err := srv.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("uucs-server: stopped; %d clients, %d results in %s\n",
				srv.ClientCount(), len(srv.Results()), *outPath)
			return
		}
	}
}

func flush(srv *server.Server, path string) error {
	runs := srv.Results()
	if len(runs) == 0 {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return core.EncodeRuns(f, runs, false)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "uucs-server:", err)
	os.Exit(1)
}
