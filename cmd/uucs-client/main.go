// Command uucs-client runs a UUCS client against a server: it registers
// with a machine snapshot, hot syncs to acquire a growing random sample
// of testcases, executes testcases with Poisson arrivals against a
// simulated foreground task and user, and uploads the results.
//
// Usage:
//
//	uucs-client -server 127.0.0.1:7060 -store ./clientdir -runs 10
//	uucs-client -server ... -task quake -mean-gap 60
//	uucs-client -server ... -script ids.txt     # deterministic mode
//	uucs-client -server ... -timeout 10s -retries 5 -retry-base 100ms
//
// Network calls are bounded by -timeout and retried with capped,
// jittered exponential backoff (-retries attempts starting at
// -retry-base, capped at -retry-max); a crashed or flaky server costs
// retries, never lost or duplicated results.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"uucs/internal/apps"
	"uucs/internal/client"
	"uucs/internal/comfort"
	"uucs/internal/core"
	"uucs/internal/hostsim"
	"uucs/internal/protocol"
	"uucs/internal/testcase"
)

func main() {
	var (
		serverAddr = flag.String("server", "127.0.0.1:7060", "server address")
		storeDir   = flag.String("store", "uucs-client-store", "local store directory")
		taskName   = flag.String("task", "word", "foreground task (word, powerpoint, ie, quake)")
		runs       = flag.Int("runs", 5, "testcase executions before exiting")
		meanGap    = flag.Float64("mean-gap", 300, "mean seconds between executions (Poisson, simulated)")
		seed       = flag.Uint64("seed", 1, "client seed")
		scriptPath = flag.String("script", "", "deterministic mode: run testcase IDs from this file in order")
		hostname   = flag.String("hostname", "sim-host", "snapshot hostname")
		defBackoff = client.DefaultBackoff()
		protoName  = flag.String("protocol", "auto", "wire framing: auto (negotiate at registration), v2 (JSON), or v3 (binary)")
		ioTimeout  = flag.Duration("timeout", 30*time.Second, "per-message network deadline (0 disables)")
		retries    = flag.Int("retries", defBackoff.Attempts, "attempts per network operation before giving up")
		retryBase  = flag.Duration("retry-base", defBackoff.Base, "initial retry backoff delay")
		retryMax   = flag.Duration("retry-max", defBackoff.Max, "retry backoff cap")
	)
	flag.Parse()

	task, err := testcase.ParseTask(*taskName)
	if err != nil {
		fatal(err)
	}
	app, err := apps.New(task)
	if err != nil {
		fatal(err)
	}
	users, err := comfort.SamplePopulation(1, comfort.DefaultPopulation(), *seed)
	if err != nil {
		fatal(err)
	}
	user := users[0]

	store, err := client.OpenStore(*storeDir)
	if err != nil {
		fatal(err)
	}
	// First use of this store: take the registration nonce from the OS
	// entropy source. The deterministic seed-derived nonce is for
	// simulated fleets only — real volunteer hosts sharing the default
	// -seed must never collide, or the server would merge them into one
	// identity and drop the second host's uploads as duplicates.
	if n, err := store.Nonce(); err != nil {
		fatal(err)
	} else if n == "" {
		nonce, err := client.RandomNonce()
		if err != nil {
			fatal(err)
		}
		if err := store.SetNonce(nonce); err != nil {
			fatal(err)
		}
	}
	machine := hostsim.StudyMachine()
	snap := protocol.Snapshot{
		Hostname: *hostname, OS: "sim",
		CPUGHz: machine.CPUGHz, MemMB: machine.MemMB, DiskGB: 80,
		Apps: []string{"word", "powerpoint", "ie", "quake3"},
	}
	cl, err := client.New(store, snap, core.NewEngine(), *seed)
	if err != nil {
		fatal(err)
	}
	cl.Timeout = *ioTimeout
	cl.Retry = client.Backoff{Base: *retryBase, Max: *retryMax, Attempts: *retries}
	switch *protoName {
	case "", "auto":
		// 0: request v3 at registration, adopt what the server grants.
	case "v2", "2":
		cl.ProtocolVersion = protocol.V2
	case "v3", "3":
		cl.ProtocolVersion = protocol.V3
	default:
		fatal(fmt.Errorf("unknown -protocol %q (want auto, v2 or v3)", *protoName))
	}
	if err := cl.Register(*serverAddr); err != nil {
		fatal(err)
	}
	fmt.Printf("uucs-client: registered as %s (wire protocol v%d)\n", cl.ID(), cl.WireVersion())
	st, err := cl.HotSync(*serverAddr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("uucs-client: hot sync brought %d testcases\n", st.NewTestcases)

	if *scriptPath != "" {
		text, err := os.ReadFile(*scriptPath)
		if err != nil {
			fatal(err)
		}
		ids := client.ParseScript(string(text))
		results, err := cl.RunScript(ids, app, user)
		if err != nil {
			fatal(err)
		}
		for _, run := range results {
			fmt.Println(" ", run)
		}
	} else {
		clock := 0.0
		for i := 0; i < *runs; i++ {
			clock += cl.NextArrival(*meanGap)
			tc, err := cl.ChooseTestcase()
			if err != nil {
				fatal(err)
			}
			run, err := cl.ExecuteRun(tc, app, user)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("  t=+%.0fs %s\n", clock, run)
		}
	}

	st, err = cl.HotSync(*serverAddr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("uucs-client: uploaded %d results\n", st.UploadedRuns)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "uucs-client:", err)
	os.Exit(1)
}
