// Command uucs-mktest creates, views and demonstrates testcases — the
// paper's testcase tooling (Figure 2: "a set of tools for creating,
// viewing, and manipulating testcases").
//
// Usage:
//
//	uucs-mktest -demo                              # Figure 3 catalog
//	uucs-mktest -plot                              # Figure 4 series
//	uucs-mktest -generate 2000 -out tcs.txt        # Internet-study store
//	uucs-mktest -view tcs.txt                      # summarize a store
//	uucs-mktest -make "step:cpu:2.0,120,40" -out one.txt
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"uucs/internal/stats"
	"uucs/internal/testcase"
)

func main() {
	var (
		demo     = flag.Bool("demo", false, "print the Figure 3 exercise-function catalog")
		plot     = flag.Bool("plot", false, "print the Figure 4 step/ramp example series")
		generate = flag.Int("generate", 0, "generate this many random testcases")
		view     = flag.String("view", "", "summarize the testcases in this store file")
		mk       = flag.String("make", "", "make one testcase: shape:resource:params (e.g. step:cpu:2.0,120,40)")
		out      = flag.String("out", "", "output file (default stdout)")
		seed     = flag.Uint64("seed", 1, "generator seed")
	)
	flag.Parse()

	switch {
	case *demo:
		fmt.Println("Figure 3. Exercise functions.")
		for _, sh := range testcase.Shapes() {
			fmt.Printf("  %-8s %s\n", sh, testcase.Describe(sh))
		}
	case *plot:
		plotFigure4()
	case *generate > 0:
		cfg := testcase.DefaultGeneratorConfig()
		cfg.Count = *generate
		tcs, err := testcase.Generate("gen", cfg, stats.NewStream(*seed))
		if err != nil {
			fatal(err)
		}
		if err := writeOut(*out, tcs); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "generated %d testcases\n", len(tcs))
	case *view != "":
		f, err := os.Open(*view)
		if err != nil {
			fatal(err)
		}
		tcs, err := testcase.DecodeAll(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		for _, tc := range tcs {
			fmt.Println(tc)
		}
		fmt.Fprintf(os.Stderr, "%d testcases\n", len(tcs))
	case *mk != "":
		tc, err := makeTestcase(*mk)
		if err != nil {
			fatal(err)
		}
		if err := writeOut(*out, []*testcase.Testcase{tc}); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// plotFigure4 prints the paper's Figure 4 examples as ASCII series.
func plotFigure4() {
	step := testcase.Step(2.0, 120, 40, 1)
	ramp := testcase.Ramp(2.0, 120, 1)
	fmt.Println("Figure 4. step(2.0,120,40) and ramp(2.0,120) exercise functions.")
	plotSeries("step(2.0,120,40)", step)
	plotSeries("ramp(2.0,120)", ramp)
}

func plotSeries(name string, f testcase.ExerciseFunction) {
	fmt.Printf("%s:\n", name)
	const rows = 8
	maxV := f.Max()
	if maxV == 0 {
		maxV = 1
	}
	for row := rows; row >= 1; row-- {
		threshold := maxV * float64(row) / rows
		var b strings.Builder
		for i := 0; i < len(f.Values); i += 2 {
			if f.Values[i] >= threshold-1e-9 {
				b.WriteByte('#')
			} else {
				b.WriteByte(' ')
			}
		}
		fmt.Printf("  %5.2f |%s\n", threshold, b.String())
	}
	fmt.Printf("        +%s\n", strings.Repeat("-", (len(f.Values)+1)/2))
	fmt.Printf("         0%*s%.0fs\n", (len(f.Values)+1)/2-5, "", f.Duration())
}

// makeTestcase parses "shape:resource:params".
func makeTestcase(spec string) (*testcase.Testcase, error) {
	parts := strings.SplitN(spec, ":", 3)
	if len(parts) != 3 {
		return nil, fmt.Errorf("want shape:resource:params, got %q", spec)
	}
	res, err := testcase.ParseResource(parts[1])
	if err != nil {
		return nil, err
	}
	var ps []float64
	for _, s := range strings.Split(parts[2], ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return nil, fmt.Errorf("bad parameter %q: %v", s, err)
		}
		ps = append(ps, v)
	}
	tc := testcase.New(fmt.Sprintf("mk-%s-%s", parts[0], parts[1]), 1)
	tc.Shape = testcase.Shape(parts[0])
	tc.Params = parts[2]
	var f testcase.ExerciseFunction
	switch tc.Shape {
	case testcase.ShapeStep:
		if len(ps) != 3 {
			return nil, fmt.Errorf("step wants x,t,b")
		}
		f = testcase.Step(ps[0], ps[1], ps[2], 1)
	case testcase.ShapeRamp:
		if len(ps) != 2 {
			return nil, fmt.Errorf("ramp wants x,t")
		}
		f = testcase.Ramp(ps[0], ps[1], 1)
	case testcase.ShapeSin:
		if len(ps) != 3 {
			return nil, fmt.Errorf("sin wants amp,period,t")
		}
		f = testcase.Sin(ps[0], ps[1], ps[2], 1)
	case testcase.ShapeSaw:
		if len(ps) != 3 {
			return nil, fmt.Errorf("saw wants amp,period,t")
		}
		f = testcase.Saw(ps[0], ps[1], ps[2], 1)
	case testcase.ShapeBlank:
		if len(ps) != 1 {
			return nil, fmt.Errorf("blank wants t")
		}
		f = testcase.Blank(ps[0], 1)
	default:
		return nil, fmt.Errorf("unsupported shape %q (use step, ramp, sin, saw, blank)", parts[0])
	}
	tc.Functions[res] = f
	return tc, tc.Validate()
}

func writeOut(path string, tcs []*testcase.Testcase) error {
	w := os.Stdout
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return testcase.EncodeAll(w, tcs)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "uucs-mktest:", err)
	os.Exit(1)
}
