// Command uucs-top is `top` for a UUCS server — or a whole cluster: it
// polls one or more /telemetry debug endpoints and renders the
// USE-method snapshot(s) — utilization, saturation and errors per
// ingest resource, headed by the 0-100 health score and the
// saturated-resource verdict.
//
// Usage:
//
//	uucs-top -addr 127.0.0.1:7061            # one snapshot, exit
//	uucs-top -addr 127.0.0.1:7061 -w         # live watch, 2s refresh
//	uucs-top -addr 127.0.0.1:7061 -w -interval 500ms
//	uucs-top -addr 127.0.0.1:7061 -json      # raw snapshot JSON
//
//	# cluster: repeat -addr (or use -addrs a,b,c) — one table per node,
//	# side by side, under a cluster-wide health verdict that names
//	# which node's resource saturated
//	uucs-top -addr 127.0.0.1:7061 -addr 127.0.0.1:7062 -w
//	uucs-top -addrs 127.0.0.1:7061,127.0.0.1:7062,127.0.0.1:7063
//
// Each -addr is a server's -debug-addr listener. In watch mode the
// screen is redrawn each interval and per-interval deltas of the
// cumulative counters are appended, so a saturating resource is
// visible as it saturates rather than only in the lifetime averages.
// With several addresses the deltas and -json output use the merged
// (node-prefixed) cluster snapshot; a node that stops answering shows
// an UNREACHABLE column and drives the cluster verdict to that node.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"uucs/internal/telemetry"
)

// addrList collects repeated -addr flags.
type addrList []string

func (a *addrList) String() string { return strings.Join(*a, ",") }
func (a *addrList) Set(v string) error {
	if v == "" {
		return fmt.Errorf("empty address")
	}
	*a = append(*a, v)
	return nil
}

func main() {
	var (
		addrs    addrList
		addrsCSV = flag.String("addrs", "", "comma-separated server -debug-addr list (cluster mode)")
		watch    = flag.Bool("w", false, "watch: redraw every -interval")
		interval = flag.Duration("interval", 2*time.Second, "refresh interval in watch mode")
		rawJSON  = flag.Bool("json", false, "print the (merged, in cluster mode) snapshot JSON and exit")
	)
	flag.Var(&addrs, "addr", "server -debug-addr to poll (repeatable for a cluster)")
	flag.Parse()
	for _, a := range strings.Split(*addrsCSV, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		addrs = addrList{"127.0.0.1:7061"}
	}

	client := &http.Client{Timeout: 5 * time.Second}

	if !*watch {
		if err := render(os.Stdout, client, addrs, *rawJSON); err != nil {
			fatal(err)
		}
		return
	}

	var prev *telemetry.Snapshot
	failures := 0
	for {
		snaps, nErr := poll(client, addrs)
		if nErr == len(addrs) {
			failures++
			fmt.Fprintf(os.Stderr, "uucs-top: no node answered (attempt %d)\n", failures)
			if failures >= 5 {
				os.Exit(1)
			}
			time.Sleep(*interval)
			continue
		}
		failures = 0
		merged := telemetry.MergeSnapshots(snaps...)
		// Clear screen + home, then the fresh table(s).
		fmt.Print("\x1b[2J\x1b[H")
		out := bufio.NewWriter(os.Stdout)
		if len(addrs) == 1 {
			if err := telemetry.WriteTable(out, snaps[0]); err != nil {
				fatal(err)
			}
			printDeltas(out, prev, snaps[0], *interval)
			prev = snaps[0]
		} else {
			writeCluster(out, addrs, snaps, merged)
			printDeltas(out, prev, merged, *interval)
			prev = merged
		}
		out.Flush()
		time.Sleep(*interval)
	}
}

// render handles the one-shot (non-watch) modes.
func render(w io.Writer, client *http.Client, addrs addrList, rawJSON bool) error {
	snaps, nErr := poll(client, addrs)
	if nErr == len(addrs) {
		return fmt.Errorf("no node answered (%d polled)", len(addrs))
	}
	if len(addrs) == 1 {
		if rawJSON {
			return writeJSON(w, snaps[0])
		}
		return telemetry.WriteTable(w, snaps[0])
	}
	merged := telemetry.MergeSnapshots(snaps...)
	if rawJSON {
		return writeJSON(w, merged)
	}
	writeCluster(w, addrs, snaps, merged)
	return nil
}

// poll fetches every address, substituting a saturated synthetic
// snapshot for nodes that do not answer — an unreachable node is the
// most saturated resource a cluster has. Returns how many failed.
func poll(client *http.Client, addrs addrList) ([]*telemetry.Snapshot, int) {
	snaps := make([]*telemetry.Snapshot, len(addrs))
	nErr := 0
	for i, addr := range addrs {
		snap, err := fetch(client, fmt.Sprintf("http://%s/telemetry?format=json", addr))
		if err != nil {
			nErr++
			snap = &telemetry.Snapshot{Taken: time.Now(), Node: nodeLabel(nil, addr, i)}
			snap.Add(telemetry.Sample{
				Resource: "node", Axis: telemetry.Errors,
				Metric: "unreachable", Value: 1, Pressure: 1,
				Detail: err.Error(),
			})
			snap.Finalize()
		}
		snaps[i] = snap
	}
	return snaps, nErr
}

// nodeLabel names a column: the node's self-reported id, or its
// address when it has none.
func nodeLabel(snap *telemetry.Snapshot, addr string, i int) string {
	if snap != nil && snap.Node != "" {
		return snap.Node
	}
	if addr != "" {
		return addr
	}
	return fmt.Sprintf("node%d", i)
}

// writeCluster renders per-node tables side by side under the
// cluster-wide health verdict line.
func writeCluster(w io.Writer, addrs addrList, snaps []*telemetry.Snapshot, merged *telemetry.Snapshot) {
	verdict := merged.Saturated
	if verdict == telemetry.Healthy {
		verdict = "none (healthy)"
	}
	fmt.Fprintf(w, "CLUSTER health %d/100  saturated: %s  (%d nodes)\n\n",
		merged.Score, verdict, len(snaps))

	cols := make([][]string, len(snaps))
	width := make([]int, len(snaps))
	rows := 0
	for i, snap := range snaps {
		var b strings.Builder
		fmt.Fprintf(&b, "[%s]\n", nodeLabel(snap, addrs[i], i))
		_ = telemetry.WriteTable(&b, snap)
		lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
		cols[i] = lines
		for _, ln := range lines {
			if len(ln) > width[i] {
				width[i] = len(ln)
			}
		}
		if len(lines) > rows {
			rows = len(lines)
		}
	}
	for r := 0; r < rows; r++ {
		for i := range cols {
			cell := ""
			if r < len(cols[i]) {
				cell = cols[i][r]
			}
			if i < len(cols)-1 {
				fmt.Fprintf(w, "%-*s  │ ", width[i], cell)
			} else {
				fmt.Fprintln(w, cell)
			}
		}
	}
}

func writeJSON(w io.Writer, snap *telemetry.Snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// printDeltas reports per-interval movement of the cumulative count
// samples (units like ops/batches/reqs), turning lifetime counters
// into rates a watcher can read saturation from.
func printDeltas(w io.Writer, prev, cur *telemetry.Snapshot, interval time.Duration) {
	if prev == nil {
		return
	}
	last := make(map[string]float64, len(prev.Samples))
	for _, sm := range prev.Samples {
		last[string(sm.Axis)+"/"+sm.Resource+"/"+sm.Metric] = sm.Value
	}
	secs := interval.Seconds()
	if secs <= 0 {
		return
	}
	wrote := false
	for _, sm := range cur.Samples {
		switch sm.Unit {
		case "ops", "batches", "reqs":
		default:
			continue
		}
		before, ok := last[string(sm.Axis)+"/"+sm.Resource+"/"+sm.Metric]
		if !ok {
			continue
		}
		if !wrote {
			fmt.Fprintf(w, "\nper-second over last %v:\n", interval)
			wrote = true
		}
		fmt.Fprintf(w, "  %-20s %-28s %10.1f %s/s\n", sm.Resource, sm.Metric, (sm.Value-before)/secs, sm.Unit)
	}
}

func fetch(client *http.Client, url string) (*telemetry.Snapshot, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	var snap telemetry.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, fmt.Errorf("decode %s: %w", url, err)
	}
	return &snap, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "uucs-top:", err)
	os.Exit(1)
}
