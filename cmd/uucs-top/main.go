// Command uucs-top is `top` for a UUCS server: it polls the server's
// /telemetry debug endpoint and renders the USE-method snapshot —
// utilization, saturation and errors per ingest resource, headed by
// the 0-100 health score and the saturated-resource verdict.
//
// Usage:
//
//	uucs-top -addr 127.0.0.1:7061            # one snapshot, exit
//	uucs-top -addr 127.0.0.1:7061 -w         # live watch, 2s refresh
//	uucs-top -addr 127.0.0.1:7061 -w -interval 500ms
//	uucs-top -addr 127.0.0.1:7061 -json      # raw snapshot JSON
//
// -addr is the server's -debug-addr listener. In watch mode the screen
// is redrawn each interval and per-interval deltas of the cumulative
// counters are appended, so a saturating resource is visible as it
// saturates rather than only in the lifetime averages.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"uucs/internal/telemetry"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7061", "server -debug-addr to poll")
		watch    = flag.Bool("w", false, "watch: redraw every -interval")
		interval = flag.Duration("interval", 2*time.Second, "refresh interval in watch mode")
		rawJSON  = flag.Bool("json", false, "print the raw snapshot JSON and exit")
	)
	flag.Parse()

	client := &http.Client{Timeout: 5 * time.Second}
	url := fmt.Sprintf("http://%s/telemetry?format=json", *addr)

	if !*watch {
		snap, err := fetch(client, url)
		if err != nil {
			fatal(err)
		}
		if *rawJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(snap); err != nil {
				fatal(err)
			}
			return
		}
		if err := telemetry.WriteTable(os.Stdout, snap); err != nil {
			fatal(err)
		}
		return
	}

	var prev *telemetry.Snapshot
	failures := 0
	for {
		snap, err := fetch(client, url)
		if err != nil {
			failures++
			fmt.Fprintf(os.Stderr, "uucs-top: %v (attempt %d)\n", err, failures)
			if failures >= 5 {
				os.Exit(1)
			}
			time.Sleep(*interval)
			continue
		}
		failures = 0
		// Clear screen + home, then the fresh table.
		fmt.Print("\x1b[2J\x1b[H")
		if err := telemetry.WriteTable(os.Stdout, snap); err != nil {
			fatal(err)
		}
		printDeltas(os.Stdout, prev, snap, *interval)
		prev = snap
		time.Sleep(*interval)
	}
}

// printDeltas reports per-interval movement of the cumulative count
// samples (units like ops/batches/reqs), turning lifetime counters
// into rates a watcher can read saturation from.
func printDeltas(w io.Writer, prev, cur *telemetry.Snapshot, interval time.Duration) {
	if prev == nil {
		return
	}
	last := make(map[string]float64, len(prev.Samples))
	for _, sm := range prev.Samples {
		last[string(sm.Axis)+"/"+sm.Resource+"/"+sm.Metric] = sm.Value
	}
	secs := interval.Seconds()
	if secs <= 0 {
		return
	}
	wrote := false
	for _, sm := range cur.Samples {
		switch sm.Unit {
		case "ops", "batches", "reqs":
		default:
			continue
		}
		before, ok := last[string(sm.Axis)+"/"+sm.Resource+"/"+sm.Metric]
		if !ok {
			continue
		}
		if !wrote {
			fmt.Fprintf(w, "\nper-second over last %v:\n", interval)
			wrote = true
		}
		fmt.Fprintf(w, "  %-16s %-28s %10.1f %s/s\n", sm.Resource, sm.Metric, (sm.Value-before)/secs, sm.Unit)
	}
}

func fetch(client *http.Client, url string) (*telemetry.Snapshot, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	var snap telemetry.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, fmt.Errorf("decode %s: %w", url, err)
	}
	return &snap, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "uucs-top:", err)
	os.Exit(1)
}
