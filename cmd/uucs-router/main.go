// Command uucs-router is the thin tier in front of a multi-node UUCS
// ingest cluster. It speaks the ordinary client protocol, so a fleet
// points at the router exactly as it would at a standalone uucs-server;
// the router derives each client's id, pins it to the node that owns it
// under the partition map, and proxies every request there.
//
// Usage:
//
//	uucs-router -addr 127.0.0.1:7060 \
//	    -node n1=127.0.0.1:7071 -node n2=127.0.0.1:7072 -node n3=127.0.0.1:7073 \
//	    -seed 1 -debug-addr 127.0.0.1:7061
//
// Every -node is one id=ingest-address pair; ids and -seed must match
// the uucs-server processes (each started with -node-id and the same
// -seed, since client ids derive from it). With -debug-addr the router
// serves:
//
//   - /telemetry — the router's own USE snapshot; add -node-debug
//     id=debug-address pairs and it polls each node's /telemetry and
//     serves the merged cluster snapshot instead, with resources
//     prefixed "node/..." so the verdict names which node saturated
//     (watch it with uucs-top -addr <router-debug>).
//   - /cluster/stats — forward/retry/failover/pin counters as JSON.
//   - POST /cluster/node?id=X&addr=Y — re-point a node id at a new
//     ingest address (manual failover).
//
// Failover with standalone processes is operator-driven: when a node
// dies, its follower's state root holds replica-<id>/ — a complete,
// fsynced copy of every acked op. Start a replacement over that
// directory (uucs-server -state <follower-root>/replica-<id> -node-id
// <id> -seed <seed>) and re-point the router:
//
//	curl -X POST 'http://<router-debug>/cluster/node?id=<id>&addr=<new-addr>'
//
// The in-process form of the same failover (automatic
// promote-on-crash) lives in internal/cluster and is exercised by the
// chaos suite; the router binary deliberately stays thin.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the debug listener
	"os"
	"os/signal"
	"strings"
	"syscall"

	"uucs/internal/cluster"
	"uucs/internal/telemetry"
)

// pairList collects repeated id=addr flags.
type pairList struct {
	order []string
	m     map[string]string
}

func (p *pairList) String() string {
	var parts []string
	for _, id := range p.order {
		parts = append(parts, id+"="+p.m[id])
	}
	return strings.Join(parts, ",")
}

func (p *pairList) Set(v string) error {
	id, addr, ok := strings.Cut(v, "=")
	if !ok || id == "" || addr == "" {
		return fmt.Errorf("want id=addr, got %q", v)
	}
	if p.m == nil {
		p.m = make(map[string]string)
	}
	if _, dup := p.m[id]; dup {
		return fmt.Errorf("duplicate node id %q", id)
	}
	p.order = append(p.order, id)
	p.m[id] = addr
	return nil
}

func main() {
	var (
		nodes, debugs pairList
		addr          = flag.String("addr", "127.0.0.1:7060", "listen address for clients")
		seed          = flag.Uint64("seed", 1, "server seed (must match every node's -seed; client ids derive from it)")
		debug         = flag.String("debug-addr", "", "serve /telemetry, /cluster/stats and the failover hook on this address (off when empty)")
	)
	flag.Var(&nodes, "node", "node as id=ingest-address (repeatable, at least one)")
	flag.Var(&debugs, "node-debug", "node debug listener as id=debug-address (repeatable; enables merged cluster /telemetry)")
	flag.Parse()

	if len(nodes.order) == 0 {
		fatal(fmt.Errorf("no nodes (-node id=addr, at least once)"))
	}
	pmap, err := cluster.NewPartitionMap(nodes.order...)
	if err != nil {
		fatal(err)
	}
	router, err := cluster.NewRouter(cluster.TCPTransport{}, *seed, pmap, nodes.m)
	if err != nil {
		fatal(err)
	}
	router.OnNodeDown = func(node string, cause error) {
		fmt.Fprintf(os.Stderr,
			"uucs-router: node %s stopped answering (%v); promote its replica (uucs-server -state <follower-root>/%s -node-id %s -seed %d), then POST /cluster/node?id=%s&addr=<new-addr>\n",
			node, cause, cluster.ReplicaDirName(node), node, *seed, node)
	}

	if *debug != "" {
		http.Handle("/telemetry", telemetry.Handler(func() *telemetry.Snapshot {
			return clusterTelemetry(router, debugs)
		}))
		http.HandleFunc("/cluster/stats", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(router.Stats())
		})
		http.HandleFunc("/cluster/node", func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodPost {
				http.Error(w, "POST only", http.StatusMethodNotAllowed)
				return
			}
			id, naddr := r.URL.Query().Get("id"), r.URL.Query().Get("addr")
			if id == "" || naddr == "" {
				http.Error(w, "need id and addr", http.StatusBadRequest)
				return
			}
			router.SetNodeAddr(id, naddr)
			fmt.Fprintf(w, "node %s -> %s\n", id, naddr)
		})
		ln, err := net.Listen("tcp", *debug)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("uucs-router: debug listener on http://%s/telemetry\n", ln.Addr())
		go func() {
			if err := http.Serve(ln, nil); err != nil {
				fmt.Fprintln(os.Stderr, "uucs-router: debug listener:", err)
			}
		}()
	}

	bound, err := router.Start(*addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("uucs-router: routing %s across %d nodes (%s)\n", bound, len(nodes.order), nodes.String())

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	if err := router.Close(); err != nil {
		fatal(err)
	}
	st := router.Stats()
	fmt.Printf("uucs-router: stopped; %d forwards, %d retries, %d failovers, %d pinned clients\n",
		st.Forwards, st.Retries, st.Failovers, st.Pins)
}

// clusterTelemetry merges the router's own snapshot with every
// reachable node's, polled over their debug listeners. An unreachable
// node contributes a saturated placeholder, so the cluster verdict
// names it.
func clusterTelemetry(router *cluster.Router, debugs pairList) *telemetry.Snapshot {
	snaps := []*telemetry.Snapshot{router.Telemetry()}
	for _, id := range debugs.order {
		snap, err := fetchSnapshot(debugs.m[id])
		if err != nil {
			snap = &telemetry.Snapshot{Node: id}
			snap.Add(telemetry.Sample{
				Resource: "node", Axis: telemetry.Errors,
				Metric: "unreachable", Value: 1, Pressure: 1,
				Detail: err.Error(),
			})
			snap.Finalize()
		} else if snap.Node == "" {
			snap.Node = id
		}
		snaps = append(snaps, snap)
	}
	return telemetry.MergeSnapshots(snaps...)
}

func fetchSnapshot(addr string) (*telemetry.Snapshot, error) {
	resp, err := http.Get(fmt.Sprintf("http://%s/telemetry?format=json", addr))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s/telemetry: %s", addr, resp.Status)
	}
	var snap telemetry.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, err
	}
	return &snap, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "uucs-router:", err)
	os.Exit(1)
}
