// Command uucs-internet simulates the paper's Internet-wide study (§4):
// a fleet of heterogeneous hosts running the UUCS client against a real
// server over loopback, with aggregated CDFs and the host-speed
// analysis the paper planned.
//
// Usage:
//
//	uucs-internet                       # 100 hosts, defaults
//	uucs-internet -hosts 200 -runs 20 -testcases 2000
package main

import (
	"flag"
	"fmt"
	"os"

	"uucs/internal/internetstudy"
	"uucs/internal/profiling"
	"uucs/internal/testcase"
)

func main() {
	var (
		hosts      = flag.Int("hosts", 100, "number of fleet hosts")
		runs       = flag.Int("runs", 12, "testcase executions per host")
		tcCount    = flag.Int("testcases", 400, "server testcase population")
		seed       = flag.Uint64("seed", 2004, "fleet seed")
		workers    = flag.Int("workers", 0, "concurrent hosts (0 = GOMAXPROCS, 1 = serial; results are identical)")
		workdir    = flag.String("workdir", "", "client store directory (default: temp)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	flag.Parse()

	stopProfiles, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}
	defer stopProfiles()

	dir := *workdir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "uucs-internet-*")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(dir)
	}

	cfg := internetstudy.DefaultConfig(dir)
	cfg.Hosts = *hosts
	cfg.RunsPerHost = *runs
	cfg.TestcaseCount = *tcCount
	cfg.Seed = *seed
	cfg.Workers = *workers
	fmt.Printf("uucs-internet: %d hosts x %d runs against %d testcases\n", cfg.Hosts, cfg.RunsPerHost, cfg.TestcaseCount)

	res, err := internetstudy.Run(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("collected %d runs from %d hosts\n\n", len(res.Runs), len(res.Hosts))

	for _, r := range testcase.Resources() {
		c := res.DB.ResourceCDF(r)
		fmt.Println(c.Render("Internet-study CDF for "+string(r), 60, 10, 0))
	}
	se, err := internetstudy.HostSpeedEffect(res)
	if err != nil {
		fatal(err)
	}
	fmt.Println(se)
	ms, err := internetstudy.MemorySizeSplit(res)
	if err != nil {
		fatal(err)
	}
	fmt.Println(ms)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "uucs-internet:", err)
	os.Exit(1)
}
