// Command uucs-internet simulates the paper's Internet-wide study (§4).
//
// Two engines back it. The default is the streaming million-host
// engine: a correlated host population (hostpop), diurnal availability
// and optional crash churn, with runs folded into bounded-memory
// aggregates as they complete. The legacy engine (-pop-profile legacy)
// is the original protocol-faithful fleet — real server, loopback
// network, per-client stores — preserved for fidelity experiments and
// pinned by a golden test.
//
// Usage:
//
//	uucs-internet                                  # 100 hosts, streaming
//	uucs-internet -hosts 1000000 -runs 2           # million-host study
//	uucs-internet -hosts 10000 -churn -smoke       # CI accounting check
//	uucs-internet -converge 1000,10000,100000      # convergence curves
//	uucs-internet -pop-profile legacy              # historical fleet path
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"uucs/internal/hostpop"
	"uucs/internal/internetstudy"
	"uucs/internal/profiling"
	"uucs/internal/stats"
	"uucs/internal/testcase"
)

func main() {
	var (
		hosts      = flag.Int("hosts", 100, "number of fleet hosts")
		runs       = flag.Int("runs", 12, "testcase executions per host")
		tcCount    = flag.Int("testcases", 400, "testcase population")
		seed       = flag.Uint64("seed", 2004, "fleet seed")
		popSeed    = flag.Uint64("pop-seed", 0, "population and run seed (0: use -seed)")
		popProfile = flag.String("pop-profile", "heien", "host population profile: heien (streaming engine) or legacy (protocol fleet)")
		churn      = flag.Bool("churn", false, "enable crash churn (hosts dying mid-testcase)")
		smoke      = flag.Bool("smoke", false, "run-accounting smoke mode: verify no run is lost or duplicated, then exit")
		converge   = flag.String("converge", "", "comma-separated fleet sizes: run the scaling/convergence experiment")
		workers    = flag.Int("workers", 0, "concurrent hosts (0 = GOMAXPROCS, 1 = serial; results are identical)")
		workdir    = flag.String("workdir", "", "legacy engine: client store directory (default: temp)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	flag.Parse()

	stopProfiles, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}
	defer stopProfiles()

	if *popSeed == 0 {
		*popSeed = *seed
	}

	if *popProfile == "legacy" {
		runLegacy(*hosts, *runs, *tcCount, *seed, *workers, *workdir)
		return
	}
	profile, err := hostpop.ByName(*popProfile)
	if err != nil {
		fatal(err)
	}

	cfg := internetstudy.DefaultStreamConfig()
	cfg.Hosts = *hosts
	cfg.RunsPerHost = *runs
	cfg.TestcaseCount = *tcCount
	cfg.Seed = *popSeed
	cfg.Profile = profile
	cfg.Workers = *workers
	if *churn {
		cfg.Churn = hostpop.DefaultChurn()
	}

	if *converge != "" {
		if err := runConvergence(cfg, *converge); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Printf("uucs-internet: streaming %d hosts x %d runs (%s population, churn=%v, pop-seed=%d)\n",
		cfg.Hosts, cfg.RunsPerHost, profile.Name, cfg.Churn.Enabled, cfg.Seed)
	start := time.Now()
	res, err := internetstudy.RunStreaming(cfg)
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)

	if *smoke {
		// RunStreaming verified Attempted == Folded + Blank + Crashed ==
		// Hosts*RunsPerHost; reaching here means no run was lost or
		// duplicated. Report and exit zero.
		ag := res.Agg
		fmt.Printf("smoke OK: %d attempts = %d folded + %d blank + %d crashed (%.1fs)\n",
			ag.Attempted, ag.Folded, ag.Blank, ag.Crashed, elapsed.Seconds())
		return
	}

	fmt.Print(res.Summary())
	fmt.Printf("wall %.1fs, heap %s\n\n", elapsed.Seconds(), heapMB())
	for _, r := range testcase.Resources() {
		a := res.Agg.ByResource[r]
		if a.N() == 0 {
			continue
		}
		fmt.Println(a.Render("Internet-study CDF for "+string(r), 60, 10, 0))
	}
	fmt.Println(internetstudy.SpeedEffectStream(res))
	small, big := res.Agg.SmallMem, res.Agg.BigMem
	fmt.Printf("memory split at %.0f MB: small f_d=%.2f over %d runs; big f_d=%.2f over %d runs\n",
		res.MedianMB, small.Fd(), small.N(), big.Fd(), big.N())
}

// runConvergence runs the streaming study at each fleet size and prints
// the two EXPERIMENTS.md curves: wall-clock/RSS vs fleet size, and
// comfort-metric convergence (CPU f_d and c_a with bootstrap CIs).
func runConvergence(base internetstudy.StreamConfig, sizes string) error {
	fmt.Printf("convergence: profile=%s runs/host=%d churn=%v pop-seed=%d\n",
		base.Profile.Name, base.RunsPerHost, base.Churn.Enabled, base.Seed)
	fmt.Printf("%10s %10s %8s %9s %8s %8s %8s %21s\n",
		"hosts", "folded", "wall_s", "heap_mb", "cpu_fd", "cpu_ca", "ci_width", "ca_95%_bootstrap")
	for _, field := range strings.Split(sizes, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(field))
		if err != nil || n <= 0 {
			return fmt.Errorf("bad fleet size %q", field)
		}
		cfg := base
		cfg.Hosts = n
		start := time.Now()
		res, err := internetstudy.RunStreaming(cfg)
		if err != nil {
			return err
		}
		wall := time.Since(start).Seconds()
		cpu := res.Agg.ByResource[testcase.CPU]
		ca, _ := cpu.MeanLevel()
		lo, hi, ok := cpu.BootstrapMeanCI(stats.NewStream(cfg.Seed+1), 200, 0.025)
		ci := "n/a"
		width := 0.0
		if ok {
			ci = fmt.Sprintf("[%6.3f, %6.3f]", lo, hi)
			width = hi - lo
		}
		fmt.Printf("%10d %10d %8.1f %9s %8.3f %8.3f %8.3f %21s\n",
			n, res.Agg.Folded, wall, heapMB(), cpu.Fd(), ca, width, ci)
	}
	return nil
}

// heapMB reports live heap after a collection — the bounded-memory
// claim is about state the study retains, not transient garbage.
func heapMB() string {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return fmt.Sprintf("%.0f", float64(ms.HeapAlloc)/(1<<20))
}

// runLegacy drives the original protocol-faithful fleet engine.
func runLegacy(hosts, runs, tcCount int, seed uint64, workers int, workdir string) {
	dir := workdir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "uucs-internet-*")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(dir)
	}

	cfg := internetstudy.DefaultConfig(dir)
	cfg.Hosts = hosts
	cfg.RunsPerHost = runs
	cfg.TestcaseCount = tcCount
	cfg.Seed = seed
	cfg.Workers = workers
	fmt.Printf("uucs-internet: legacy fleet, %d hosts x %d runs against %d testcases\n", cfg.Hosts, cfg.RunsPerHost, cfg.TestcaseCount)

	res, err := internetstudy.Run(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("collected %d runs from %d hosts\n\n", len(res.Runs), len(res.Hosts))

	for _, r := range testcase.Resources() {
		c := res.DB.ResourceCDF(r)
		fmt.Println(c.Render("Internet-study CDF for "+string(r), 60, 10, 0))
	}
	se, err := internetstudy.HostSpeedEffect(res)
	if err != nil {
		fatal(err)
	}
	fmt.Println(se)
	ms, err := internetstudy.MemorySizeSplit(res)
	if err != nil {
		fatal(err)
	}
	fmt.Println(ms)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "uucs-internet:", err)
	os.Exit(1)
}
