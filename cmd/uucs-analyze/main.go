// Command uucs-analyze imports result files into the analysis database
// and prints the paper's tables and CDFs — the analysis phase of
// Figure 2.
//
// Usage:
//
//	uucs-analyze results.txt                 # breakdown + metric tables
//	uucs-analyze -cdf cpu results.txt        # one aggregated CDF
//	uucs-analyze -grid results.txt           # the Figure 18 grid
//	uucs-analyze -cluster ./cluster-state    # merge a cluster's journals
//
// -cluster takes a cluster state root (the tree uucs-server/-router
// nodes journal under): every node and replica journal beneath it is
// discovered and deterministically merged — deduplicated by client and
// batch sequence, byte-identical regardless of node count or merge
// order — before analysis. It composes with result files: both are
// imported into the same database.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"uucs/internal/analysis"
	"uucs/internal/cluster"
	"uucs/internal/core"
	"uucs/internal/testcase"
)

func main() {
	var (
		cdfRes      = flag.String("cdf", "", "print the aggregated CDF for one resource (cpu, memory, disk)")
		grid        = flag.Bool("grid", false, "print the per-task/resource CDF grid (Figure 18)")
		km          = flag.String("km", "", "print the Kaplan-Meier discomfort curve for one resource")
		clusterRoot = flag.String("cluster", "", "cluster state root: merge every node and replica journal under it")
		workers     = flag.Int("merge-workers", 0, "parallel source-scan workers for the -cluster merge (0 = GOMAXPROCS; the merged output is byte-identical at any setting)")
		spillMB     = flag.Int("merge-spill-mb", 0, "per-worker in-memory merge chunk bound in MB before spilling to a temp file (0 = default 32)")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
		memProfile  = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()
	if flag.NArg() == 0 && *clusterRoot == "" {
		fmt.Fprintln(os.Stderr, "usage: uucs-analyze [flags] results.txt...")
		os.Exit(2)
	}
	stopProfiles := startProfiles(*cpuProfile, *memProfile, fatal)
	defer stopProfiles()

	db := analysis.NewDB(nil)
	if *clusterRoot != "" {
		opt := cluster.MergeOptions{Workers: *workers, SpillBytes: *spillMB << 20}
		runs, st, err := cluster.MergedRunsOpts(*clusterRoot, opt)
		if err != nil {
			fatal(fmt.Errorf("cluster %s: %w", *clusterRoot, err))
		}
		fmt.Printf("merged %d sources under %s: %d batches kept, %d duplicates dropped, %d spills (%d bytes)\n",
			st.Sources, *clusterRoot, st.Batches, st.DupBatches, st.Spills, st.SpilledBytes)
		db.Add(runs...)
	}
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		runs, err := core.DecodeRuns(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		db.Add(runs...)
	}
	fmt.Printf("imported %d runs\n\n", db.Len())

	switch {
	case *km != "":
		res, err := testcase.ParseResource(*km)
		if err != nil {
			fatal(err)
		}
		curve, err := db.KMResourceCurve(res)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("Kaplan-Meier discomfort estimate for %s (censoring-corrected):\n", res)
		fmt.Printf("%8s %10s %8s %7s\n", "level", "discomfort", "at-risk", "events")
		for _, pt := range curve {
			fmt.Printf("%8.2f %10.3f %8d %7d\n", pt.Level, 1-pt.S, pt.AtRisk, pt.Events)
		}
		if v, ok := analysis.KMC05(curve); ok {
			fmt.Printf("KM c_0.05 = %.2f\n", v)
		}
	case *cdfRes != "":
		res, err := testcase.ParseResource(*cdfRes)
		if err != nil {
			fatal(err)
		}
		c := db.ResourceCDF(res)
		fmt.Println(c.Render("CDF of discomfort for "+string(res), 60, 12, 0))
	case *grid:
		for _, task := range testcase.Tasks() {
			for _, res := range testcase.Resources() {
				c := db.TaskResourceCDF(task, res)
				fmt.Println(c.Render(fmt.Sprintf("%s / %s", testcase.TaskLabel(task), res), 48, 8, 0))
			}
		}
	default:
		printBreakdown(db)
		printMetrics(db)
	}
}

func printBreakdown(db *analysis.DB) {
	fmt.Println("Breakdown of runs:")
	for _, row := range db.Breakdown() {
		label := "Total"
		if row.Task != "" {
			label = testcase.TaskLabel(row.Task)
		}
		fmt.Printf("  %-18s df=%-4d ex=%-4d blank-df=%-3d blank-ex=%-3d noise=%.2f\n",
			label, row.NonBlankDiscomforted, row.NonBlankExhausted,
			row.BlankDiscomforted, row.BlankExhausted, row.NoiseFloor())
	}
	fmt.Println()
}

func printMetrics(db *analysis.DB) {
	table := db.MetricsTable()
	letters := analysis.SensitivityTable(table)
	fmt.Printf("%-14s %-8s %6s %8s %8s %20s %4s\n", "task", "resource", "f_d", "c_05", "c_a", "95% CI", "sens")
	rows := append([]testcase.Task{}, testcase.Tasks()...)
	rows = append(rows, testcase.Task(""))
	for _, task := range rows {
		for _, res := range testcase.Resources() {
			m, err := analysis.Cell(table, task, res)
			if err != nil {
				continue
			}
			label := "Total"
			if task != "" {
				label = testcase.TaskLabel(task)
			}
			c05 := "*"
			if m.HasC05 {
				c05 = fmt.Sprintf("%.2f", m.C05)
			}
			ca, ci := "*", strings.Repeat(" ", 13)
			if m.HasCa {
				ca = fmt.Sprintf("%.2f", m.Ca)
				ci = fmt.Sprintf("(%.2f, %.2f)", m.CaLo, m.CaHi)
			}
			fmt.Printf("%-14s %-8s %6.2f %8s %8s %20s %4s\n",
				label, res, m.Fd, c05, ca, ci, letters[task][res])
		}
	}
}

// startProfiles starts the optional -cpuprofile capture and returns a
// stop function that finalizes it and writes the -memprofile heap
// snapshot. Either path may be empty.
func startProfiles(cpuPath, memPath string, fail func(error)) func() {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fail(err)
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fail(err)
			}
			f.Close()
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "uucs-analyze:", err)
	os.Exit(1)
}
