// Command uucs-exercise runs a testcase's resource exercisers FOR REAL
// on this machine — the actual §2.2 mechanism: calibrated busy-wait CPU
// playback, synced seek+write disk streams, and a touched memory pool.
// Press Ctrl-C to express discomfort; the exercisers stop immediately
// and the offset is reported, exactly like the paper's client.
//
// Usage:
//
//	uucs-exercise -spec ramp:cpu:2.0,120          # ramp CPU to 2.0 over 2 min
//	uucs-exercise -file tcs.txt -id ctrl-word-1   # a stored testcase
//	uucs-exercise -spec step:memory:0.5,60,10 -mem-pool 512
//	uucs-exercise -verify 1.5                     # §2.2 playback fidelity check
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"uucs/internal/exerciser"
	"uucs/internal/monitor"
	"uucs/internal/testcase"
)

func main() {
	var (
		specStr  = flag.String("spec", "", "testcase spec: shape:resource:params (e.g. ramp:cpu:2.0,120)")
		filePath = flag.String("file", "", "testcase store file")
		id       = flag.String("id", "", "testcase id within -file")
		scratch  = flag.String("scratch", os.TempDir(), "directory for the disk exerciser scratch file")
		diskMB   = flag.Int("disk-file", 256, "disk scratch file size in MB")
		memPool  = flag.Int("mem-pool", 0, "memory pool size in MB (0 = physical memory, as in the paper)")
		seed     = flag.Uint64("seed", 1, "stochastic borrowing seed")
		verify   = flag.Float64("verify", 0, "run the §2.2 CPU playback verification at this contention and exit")
		dry      = flag.Bool("dry", false, "print the plan without exercising")
	)
	flag.Parse()

	if *verify > 0 {
		fmt.Printf("calibrating... %.0f iterations/s\n", exerciser.Calibrate())
		fmt.Printf("verifying CPU playback at contention %.2f (expect ~%.0f%% on a saturated core)\n",
			*verify, 100/(1+*verify))
		share, err := exerciser.VerifyPlayback(*verify, 6, *seed)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("reference thread achieved %.1f%% of its solo rate\n", share*100)
		return
	}

	tc, err := loadTestcase(*specStr, *filePath, *id)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("testcase: %s\n", tc)
	if *dry {
		for _, r := range testcase.Resources() {
			if f, ok := tc.Functions[r]; ok && !f.IsBlank() {
				fmt.Printf("  %-7s %.0fs, peak %.2f, mean %.2f\n", r, f.Duration(), f.Max(), f.Mean())
			}
		}
		return
	}

	set := exerciser.NewSet(*scratch, *diskMB, *memPool, *seed)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Live system monitoring alongside the exercisers, as the paper's
	// client records with every run.
	var rec *monitor.Recorder
	sampler := monitor.NewProcSampler()
	if sampler.Available() {
		rec, _ = monitor.NewRecorder(1)
		go func() {
			_ = rec.CaptureLive(sampler, tc.Duration(), func(s float64) {
				select {
				case <-ctx.Done():
				case <-time.After(time.Duration(s * float64(time.Second))):
				}
			})
		}()
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	start := time.Now()
	go func() {
		<-sig
		fmt.Printf("\ndiscomfort expressed at offset %.1fs — stopping exercisers\n", time.Since(start).Seconds())
		cancel()
	}()

	fmt.Println("exercising (Ctrl-C to express discomfort)...")
	err = set.Run(ctx, tc)
	if rec != nil {
		s := rec.Summarize()
		fmt.Printf("monitor: %d samples, cpu avg %.2f max %.2f, mem %.0f%%, disk util avg %.2f\n",
			s.N, s.AvgCPU, s.MaxCPU, s.AvgMem*100, s.AvgDiskQ)
	}
	switch {
	case err == nil:
		fmt.Printf("testcase exhausted after %.1fs without feedback\n", time.Since(start).Seconds())
	case ctx.Err() != nil:
		offset := time.Since(start).Seconds()
		lastFive := tc.LastFive(offset)
		for r, vs := range lastFive {
			if len(vs) > 0 {
				fmt.Printf("  last five %s contention values: %.2f\n", r, vs)
			}
		}
	default:
		fatal(err)
	}
}

func loadTestcase(spec, file, id string) (*testcase.Testcase, error) {
	switch {
	case spec != "":
		return parseSpec(spec)
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		tcs, err := testcase.DecodeAll(f)
		if err != nil {
			return nil, err
		}
		for _, tc := range tcs {
			if tc.ID == id {
				return tc, nil
			}
		}
		return nil, fmt.Errorf("testcase %q not found in %s (%d testcases)", id, file, len(tcs))
	default:
		return nil, fmt.Errorf("need -spec or -file/-id")
	}
}

func parseSpec(spec string) (*testcase.Testcase, error) {
	parts := strings.SplitN(spec, ":", 3)
	if len(parts) != 3 {
		return nil, fmt.Errorf("want shape:resource:params, got %q", spec)
	}
	res, err := testcase.ParseResource(parts[1])
	if err != nil {
		return nil, err
	}
	var ps []float64
	for _, s := range strings.Split(parts[2], ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return nil, err
		}
		ps = append(ps, v)
	}
	tc := testcase.New("live-"+parts[0], 1)
	tc.Shape = testcase.Shape(parts[0])
	tc.Params = parts[2]
	var f testcase.ExerciseFunction
	switch tc.Shape {
	case testcase.ShapeRamp:
		if len(ps) != 2 {
			return nil, fmt.Errorf("ramp wants x,t")
		}
		f = testcase.Ramp(ps[0], ps[1], 1)
	case testcase.ShapeStep:
		if len(ps) != 3 {
			return nil, fmt.Errorf("step wants x,t,b")
		}
		f = testcase.Step(ps[0], ps[1], ps[2], 1)
	case testcase.ShapeSin:
		if len(ps) != 3 {
			return nil, fmt.Errorf("sin wants amp,period,t")
		}
		f = testcase.Sin(ps[0], ps[1], ps[2], 1)
	case testcase.ShapeSaw:
		if len(ps) != 3 {
			return nil, fmt.Errorf("saw wants amp,period,t")
		}
		f = testcase.Saw(ps[0], ps[1], ps[2], 1)
	default:
		return nil, fmt.Errorf("unsupported shape %q", parts[0])
	}
	tc.Functions[res] = f
	return tc, tc.Validate()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "uucs-exercise:", err)
	os.Exit(1)
}
