// Command uucs-study runs the controlled user-comfort study (paper §3)
// and prints any of its figures and tables.
//
// Usage:
//
//	uucs-study                     # run the study, print every figure
//	uucs-study -figure 16          # print one figure (9..18 or "frog")
//	uucs-study -users 50 -seed 7   # vary the population
//	uucs-study -suite              # print the Figure 8 testcase table
//	uucs-study -runs results.txt   # also dump raw run records
package main

import (
	"flag"
	"fmt"
	"os"

	"uucs/internal/core"
	"uucs/internal/profiling"
	"uucs/internal/study"
	"uucs/internal/testcase"
)

func main() {
	var (
		figure     = flag.String("figure", "", "figure to print (9..18, frog); empty prints all")
		users      = flag.Int("users", 33, "number of study participants")
		seed       = flag.Uint64("seed", 2004, "study seed")
		workers    = flag.Int("workers", 0, "concurrent study units (0 = GOMAXPROCS, 1 = serial; results are identical)")
		suite      = flag.Bool("suite", false, "print the Figure 8 testcase suite and exit")
		ablate     = flag.Bool("ablate", false, "run the model ablations and exit")
		runsPath   = flag.String("runs", "", "also write raw run records to this file")
		withLoad   = flag.Bool("load", false, "include monitor load samples in -runs output")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	flag.Parse()

	stopProfiles, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}
	defer stopProfiles()

	if *suite {
		if err := printSuite(); err != nil {
			fatal(err)
		}
		return
	}

	cfg := study.DefaultConfig()
	cfg.Users = *users
	cfg.Seed = *seed
	cfg.Workers = *workers

	if *ablate {
		results, err := study.RunAblations(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Println(study.RenderAblations(results))
		return
	}

	res, err := study.Run(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("controlled study: %d users, %d runs (seed %d)\n\n", len(res.Users), len(res.Runs), cfg.Seed)

	if *figure != "" {
		s, err := res.Figure(*figure)
		if err != nil {
			fatal(err)
		}
		fmt.Println(s)
	} else {
		fmt.Println(res.RenderAll())
	}

	if *runsPath != "" {
		f, err := os.Create(*runsPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := core.EncodeRuns(f, res.Runs, *withLoad); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d run records to %s\n", len(res.Runs), *runsPath)
	}
}

func printSuite() error {
	all, err := testcase.ControlledSuiteAll()
	if err != nil {
		return err
	}
	fmt.Println("Figure 8. Testcase descriptions for the 4 tasks (run in random order).")
	for _, task := range testcase.Tasks() {
		fmt.Printf("%s:\n", testcase.TaskLabel(task))
		for i, tc := range all[task] {
			fmt.Printf("  %d. %s\n", i+1, tc)
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "uucs-study:", err)
	os.Exit(1)
}
