// Command uucs-bench runs the repository's key benchmarks in-process
// and records them as machine-readable JSON, so performance is tracked
// the same way figures are: against a committed baseline.
//
// It drives testing.Benchmark directly rather than shelling out to
// `go test -bench` and parsing text, which keeps the result schema
// stable and the tool dependency-free. The suite covers the benchmarks
// the regression gate cares about: the full controlled-study pipeline,
// the fleet simulation, testcase-suite construction, single-run
// execution per task, and the §2.2 exerciser-fidelity kernels.
//
// Usage:
//
//	uucs-bench -out BENCH_results.json
//	uucs-bench -out BENCH_results.json -compare BENCH_baseline.json -threshold 0.15
//
// With -compare, the exit status is nonzero if any benchmark's ns/op
// regressed by more than the threshold fraction against the baseline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"testing"

	"uucs"
	"uucs/internal/cluster"
	"uucs/internal/hostpop"
	"uucs/internal/hostsim"
	"uucs/internal/internetstudy"
	"uucs/internal/loadgen"
	"uucs/internal/protocol"
	"uucs/internal/server"
	"uucs/internal/study"
	"uucs/internal/testcase"
)

// Result is one benchmark's recorded measurement.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// File is the on-disk schema of BENCH_results.json / BENCH_baseline.json.
type File struct {
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "BENCH_results.json", "write results to this file (empty disables)")
	compare := flag.String("compare", "", "baseline file to compare against; nonzero exit on regression")
	threshold := flag.Float64("threshold", 0.15, "allowed fractional ns/op regression before failing")
	only := flag.String("only", "", "run only the benchmark with this name")
	count := flag.Int("count", 3, "repetitions per benchmark; the fastest is recorded")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the benchmark run to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	results := runSuite(*only, *count)

	file := File{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchmarks: results,
	}
	for _, r := range results {
		fmt.Printf("%-28s %12.0f ns/op %12d B/op %8d allocs/op\n",
			r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}
	if *out != "" {
		buf, err := json.MarshalIndent(file, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if *compare != "" {
		if err := compareBaseline(*compare, results, *threshold); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "uucs-bench:", err)
	os.Exit(2)
}

// suite lists the gated benchmarks. Names match the bench_test.go
// benchmarks they mirror, so `go test -bench` and uucs-bench agree on
// what "BenchmarkControlledStudy" means.
func suite() []struct {
	name string
	fn   func(b *testing.B)
} {
	return []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"BenchmarkControlledStudy", benchControlledStudy},
		{"BenchmarkInternetStudy", benchInternetStudy},
		{"BenchmarkInternetStudyMillionHosts", benchInternetStudyMillionHosts},
		{"BenchmarkFig08Suite", benchFig08Suite},
		{"BenchmarkRunExecution/word", benchRunExecution(testcase.Word)},
		{"BenchmarkRunExecution/powerpoint", benchRunExecution(testcase.Powerpoint)},
		{"BenchmarkRunExecution/ie", benchRunExecution(testcase.IE)},
		{"BenchmarkRunExecution/quake", benchRunExecution(testcase.Quake)},
		{"BenchmarkExerciserFidelityCPU", benchFidelityCPU},
		{"BenchmarkExerciserFidelityDisk", benchFidelityDisk},
		{"BenchmarkEncodeMessage/v2", benchEncodeMessage(protocol.V2)},
		{"BenchmarkEncodeMessage/v3", benchEncodeMessage(protocol.V3)},
		{"BenchmarkDecodeMessage/v2", benchDecodeMessage(protocol.V2)},
		{"BenchmarkDecodeMessage/v3", benchDecodeMessage(protocol.V3)},
		{"BenchmarkServerIngest", benchServerIngest},
		{"BenchmarkClusterIngest", benchClusterIngest},
		{"BenchmarkColdRestart", benchColdRestart},
		{"BenchmarkFailoverPromote", benchFailoverPromote},
		{"BenchmarkClusterMerge", benchClusterMerge},
	}
}

func runSuite(only string, count int) []Result {
	if count < 1 {
		count = 1
	}
	var results []Result
	for _, bm := range suite() {
		if only != "" && bm.name != only {
			continue
		}
		// Record the fastest of count repetitions: scheduling and cache
		// noise only ever slows a run down, so the minimum is the most
		// repeatable estimate of the code's cost.
		var best Result
		for rep := 0; rep < count; rep++ {
			r := testing.Benchmark(bm.fn)
			res := Result{
				Name:        bm.name,
				Iterations:  r.N,
				NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
				BytesPerOp:  r.AllocedBytesPerOp(),
				AllocsPerOp: r.AllocsPerOp(),
			}
			if len(r.Extra) > 0 {
				res.Metrics = make(map[string]float64, len(r.Extra))
				for k, v := range r.Extra {
					res.Metrics[k] = v
				}
			}
			if rep == 0 || res.NsPerOp < best.NsPerOp {
				best = res
			}
		}
		results = append(results, best)
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Name < results[j].Name })
	return results
}

// compareBaseline fails if any benchmark present in both files
// regressed in ns/op by more than the threshold fraction. Benchmarks
// only on one side are reported but never fail the gate, so the suite
// can grow without invalidating old baselines.
func compareBaseline(path string, results []Result, threshold float64) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("uucs-bench: read baseline: %w", err)
	}
	var base File
	if err := json.Unmarshal(buf, &base); err != nil {
		return fmt.Errorf("uucs-bench: parse baseline: %w", err)
	}
	baseline := make(map[string]Result, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseline[b.Name] = b
	}
	var regressions []string
	for _, r := range results {
		b, ok := baseline[r.Name]
		if !ok {
			fmt.Printf("%-28s (new, no baseline)\n", r.Name)
			continue
		}
		ratio := r.NsPerOp / b.NsPerOp
		fmt.Printf("%-28s %12.0f -> %12.0f ns/op (%+.1f%%)\n",
			r.Name, b.NsPerOp, r.NsPerOp, (ratio-1)*100)
		if ratio > 1+threshold {
			regressions = append(regressions,
				fmt.Sprintf("%s regressed %.1f%% (%.0f -> %.0f ns/op, threshold %.0f%%)",
					r.Name, (ratio-1)*100, b.NsPerOp, r.NsPerOp, threshold*100))
		}
	}
	if len(regressions) > 0 {
		for _, s := range regressions {
			fmt.Fprintln(os.Stderr, "REGRESSION:", s)
		}
		return fmt.Errorf("uucs-bench: %d benchmark(s) regressed beyond %.0f%%", len(regressions), threshold*100)
	}
	fmt.Println("benchmark gate: ok")
	return nil
}

func benchControlledStudy(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := study.Run(study.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func benchInternetStudy(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dir, err := os.MkdirTemp("", "uucs-bench-")
		if err != nil {
			b.Fatal(err)
		}
		cfg := internetstudy.DefaultConfig(dir)
		cfg.Hosts = 12
		cfg.RunsPerHost = 4
		cfg.TestcaseCount = 60
		res, err := internetstudy.Run(cfg)
		os.RemoveAll(dir)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Runs) == 0 {
			b.Fatal("no runs")
		}
	}
}

// benchInternetStudyMillionHosts gates the streaming engine's per-run
// cost with a scaled-down slice of the million-host configuration
// (correlated population, diurnal windows, crash churn).
func benchInternetStudyMillionHosts(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := internetstudy.DefaultStreamConfig()
		cfg.Hosts = 4000
		cfg.RunsPerHost = 2
		cfg.TestcaseCount = 100
		cfg.Churn = hostpop.DefaultChurn()
		res, err := internetstudy.RunStreaming(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Agg.Folded == 0 {
			b.Fatal("no folded runs")
		}
	}
}

func benchFig08Suite(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := testcase.ControlledSuiteAll(); err != nil {
			b.Fatal(err)
		}
	}
}

func benchRunExecution(task testcase.Task) func(b *testing.B) {
	return func(b *testing.B) {
		users, err := uucs.SamplePopulation(1, uucs.DefaultPopulation(), 1)
		if err != nil {
			b.Fatal(err)
		}
		app, err := uucs.NewApp(task)
		if err != nil {
			b.Fatal(err)
		}
		suite, err := testcase.ControlledSuite(task)
		if err != nil {
			b.Fatal(err)
		}
		engine := uucs.NewEngine()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := engine.Execute(suite[0], app, users[0], uint64(i)); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchWireMessage is the representative results-upload message the
// codec benchmarks encode and decode (mirrors alloc_test.go).
func benchWireMessage() protocol.Message {
	return protocol.Message{
		Type:     protocol.TypeResults,
		ClientID: "client-00042",
		Seq:      1729,
		Payload: "run\tword\tcpu\t0.45\t1\t173ms\tok\n" +
			"run\tword\tmem\t0.30\t1\t181ms\tok\n" +
			"run\tword\tdisk\t0.15\t1\t164ms\tok\n",
	}
}

// discardRW drops writes; repeatRW replays the same frame bytes
// forever (the decode fixture).
type discardRW struct{}

func (discardRW) Write(p []byte) (int, error) { return len(p), nil }
func (discardRW) Read(p []byte) (int, error)  { return 0, fmt.Errorf("read on encode fixture") }

type repeatRW struct {
	frame []byte
	off   int
}

func (r *repeatRW) Read(p []byte) (int, error) {
	n := copy(p, r.frame[r.off:])
	r.off = (r.off + n) % len(r.frame)
	return n, nil
}

func (r *repeatRW) Write(p []byte) (int, error) { return len(p), nil }

// captureRW records the last frame written, for building decode
// fixtures from a real Send.
type captureRW struct{ frame []byte }

func (c *captureRW) Write(p []byte) (int, error) {
	c.frame = append(c.frame[:0], p...)
	return len(p), nil
}
func (c *captureRW) Read(p []byte) (int, error) { return 0, fmt.Errorf("read on capture fixture") }

// benchEncodeMessage mirrors alloc_test.go's BenchmarkEncodeMessage
// sub-benchmark for one framing version.
func benchEncodeMessage(ver int) func(b *testing.B) {
	return func(b *testing.B) {
		c := protocol.NewConn(discardRW{})
		c.SetVersion(ver)
		m := benchWireMessage()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := c.Send(m); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchDecodeMessage mirrors alloc_test.go's BenchmarkDecodeMessage:
// the receive path each version's server actually runs (RecvFrame —
// for v3 the zero-copy borrowed view).
func benchDecodeMessage(ver int) func(b *testing.B) {
	return func(b *testing.B) {
		var cw captureRW
		enc := protocol.NewConn(&cw)
		enc.SetVersion(ver)
		if err := enc.Send(benchWireMessage()); err != nil {
			b.Fatal(err)
		}
		c := protocol.NewConn(&repeatRW{frame: append([]byte(nil), cw.frame...)})
		b.ReportAllocs()
		b.SetBytes(int64(len(cw.frame)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.RecvFrame(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchServerIngest mirrors bench_test.go's BenchmarkServerIngest: 16
// closed-loop clients over loopback TCP against a journaling server.
func benchServerIngest(b *testing.B) {
	dir, err := os.MkdirTemp("", "uucs-bench-ingest-")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	rep, err := loadgen.Run(loadgen.Config{
		Clients: 16, Batches: b.N, RunsPerBatch: 3,
		StateDir: dir, Net: "tcp", Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	if rep.Lost > 0 || rep.Duplicated > 0 {
		b.Fatalf("ingest broke durability: lost=%d duplicated=%d", rep.Lost, rep.Duplicated)
	}
	b.ReportMetric(rep.BatchesPerSec, "batches/sec")
}

// benchClusterIngest mirrors bench_test.go's BenchmarkClusterIngest:
// the same fleet through a routed, replicated 3-node cluster.
func benchClusterIngest(b *testing.B) {
	dir, err := os.MkdirTemp("", "uucs-bench-cluster-")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	rep, err := loadgen.Run(loadgen.Config{
		Clients: 16, Batches: b.N, RunsPerBatch: 3,
		StateDir: dir, Net: "tcp", Seed: 1,
		Nodes: []string{"n1", "n2", "n3"},
	})
	if err != nil {
		b.Fatal(err)
	}
	if rep.Lost > 0 || rep.Duplicated > 0 {
		b.Fatalf("cluster ingest broke durability: lost=%d duplicated=%d", rep.Lost, rep.Duplicated)
	}
	b.ReportMetric(rep.BatchesPerSec, "batches/sec")
}

// benchClusterFixture mirrors bench_test.go's clusterStateFixture: a
// real routed 3-node cluster run with segment rotation on, whose state
// tree (node + replica journals) the cold-path benchmarks replay and
// merge. The caller removes the returned directory.
func benchClusterFixture(b *testing.B) (root string, runs uint64, cleanup func()) {
	dir, err := os.MkdirTemp("", "uucs-bench-coldpath-")
	if err != nil {
		b.Fatal(err)
	}
	rep, err := loadgen.Run(loadgen.Config{
		Clients: 8, Batches: 600, RunsPerBatch: 8,
		StateDir: dir, Net: "mem", Seed: 1,
		Nodes:               []string{"n1", "n2", "n3"},
		JournalSegmentBytes: 64 << 10,
	})
	if err != nil {
		os.RemoveAll(dir)
		b.Fatal(err)
	}
	if rep.Lost > 0 || rep.Duplicated > 0 {
		os.RemoveAll(dir)
		b.Fatalf("fixture broke durability: lost=%d duplicated=%d", rep.Lost, rep.Duplicated)
	}
	return dir, rep.Runs, func() { os.RemoveAll(dir) }
}

// benchColdRestart mirrors bench_test.go's BenchmarkColdRestart: a
// full state replay over a multi-segment journal laid down by real
// ingest load.
func benchColdRestart(b *testing.B) {
	dir, err := os.MkdirTemp("", "uucs-bench-restart-")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	rep, err := loadgen.Run(loadgen.Config{
		Clients: 8, Batches: 1200, RunsPerBatch: 8,
		StateDir: dir, Net: "mem", Seed: 1,
		JournalSegmentBytes: 64 << 10,
	})
	if err != nil {
		b.Fatal(err)
	}
	if rep.Lost > 0 || rep.Duplicated > 0 {
		b.Fatalf("fixture broke durability: lost=%d duplicated=%d", rep.Lost, rep.Duplicated)
	}
	b.ResetTimer()
	restored := 0
	for i := 0; i < b.N; i++ {
		srv := server.New(1)
		if err := srv.LoadState(dir); err != nil {
			b.Fatal(err)
		}
		restored = len(srv.Results())
	}
	if uint64(restored) != rep.Runs {
		b.Fatalf("restored %d runs, want %d", restored, rep.Runs)
	}
	b.ReportMetric(float64(restored), "runs_restored")
}

// benchFailoverPromote mirrors bench_test.go's
// BenchmarkFailoverPromote: replaying a dead primary's shipped replica
// journal, the phase that dominates the promote takeover window.
func benchFailoverPromote(b *testing.B) {
	root, _, cleanup := benchClusterFixture(b)
	defer cleanup()
	replicas, err := filepath.Glob(filepath.Join(root, "node-*", "replica-*"))
	if err != nil || len(replicas) == 0 {
		b.Fatalf("no replica dirs under %s (err=%v)", root, err)
	}
	dir := replicas[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv := server.New(1)
		if err := srv.LoadState(dir); err != nil {
			b.Fatal(err)
		}
		if len(srv.Results()) == 0 {
			b.Fatal("replica journal replayed to empty state")
		}
	}
}

// benchClusterMerge mirrors bench_test.go's BenchmarkClusterMerge:
// the streaming k-way merge over every node and replica journal.
func benchClusterMerge(b *testing.B) {
	root, runs, cleanup := benchClusterFixture(b)
	defer cleanup()
	b.ResetTimer()
	merged := 0
	for i := 0; i < b.N; i++ {
		rs, _, err := cluster.MergedRuns(root)
		if err != nil {
			b.Fatal(err)
		}
		merged = len(rs)
	}
	if uint64(merged) != runs {
		b.Fatalf("merged %d runs, want %d", merged, runs)
	}
	b.ReportMetric(float64(merged), "runs_merged")
}

func benchFidelityCPU(b *testing.B) {
	ms := hostsim.DefaultMicroSim()
	var share float64
	for i := 0; i < b.N; i++ {
		var err error
		share, err = ms.MeasureCPUShare(1.5, 60, 7)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(share, "share_at_c1.5")
}

func benchFidelityDisk(b *testing.B) {
	ms := hostsim.DefaultMicroSim()
	var share float64
	for i := 0; i < b.N; i++ {
		var err error
		share, err = ms.MeasureDiskShare(7, 60, hostsim.StudyMachine(), 7)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(share, "share_at_c7")
}
