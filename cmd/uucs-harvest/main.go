// Command uucs-harvest evaluates resource-borrowing policies over a
// simulated desktop fleet — the paper's §1 motivation quantified: how
// much background CPU does each policy harvest, and how many users does
// it annoy into disabling the framework?
//
// Usage:
//
//	uucs-harvest                       # 40 users, 8h day, 4 policies
//	uucs-harvest -users 100 -hours 10 -target 0.02
//	uucs-harvest -cluster ./cluster-state   # CDFs from harvested fleet data
//
// -cluster skips the controlled study and instead derives the
// discomfort CDFs from real harvested data: a cluster state root (the
// tree a routed uucs ingest cluster journals under) whose node and
// replica journals are discovered and deterministically merged —
// deduplicated by client and batch sequence — into the analysis
// database the throttled policies' ceilings are read from.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"uucs/internal/analysis"
	"uucs/internal/cluster"
	"uucs/internal/comfort"
	"uucs/internal/core"
	"uucs/internal/harvest"
	"uucs/internal/study"
)

func main() {
	var (
		users       = flag.Int("users", 40, "fleet size")
		hours       = flag.Float64("hours", 8, "day length")
		target      = flag.Float64("target", 0.05, "CDF discomfort target for the throttled policies")
		seed        = flag.Uint64("seed", 2004, "fleet seed")
		fixed       = flag.Float64("fixed", 0.2, "level for the fixed-priority baseline policy")
		clusterRoot = flag.String("cluster", "", "derive the CDFs from this cluster state root (merged node journals) instead of running a controlled study")
		workers     = flag.Int("merge-workers", 0, "parallel source-scan workers for the -cluster merge (0 = GOMAXPROCS; the merged output is byte-identical at any setting)")
		spillMB     = flag.Int("merge-spill-mb", 0, "per-worker in-memory merge chunk bound in MB before spilling to a temp file (0 = default 32)")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
		memProfile  = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()
	stopProfiles := startProfiles(*cpuProfile, *memProfile, fatal)
	defer stopProfiles()

	// Measure the CDFs first (§5: exploit them) — from a cluster's
	// merged dataset when one is given, else from a controlled study.
	var db *analysis.DB
	if *clusterRoot != "" {
		opt := cluster.MergeOptions{Workers: *workers, SpillBytes: *spillMB << 20}
		runs, st, err := cluster.MergedRunsOpts(*clusterRoot, opt)
		if err != nil {
			fatal(fmt.Errorf("cluster %s: %w", *clusterRoot, err))
		}
		fmt.Printf("uucs-harvest: merged %d sources under %s (%d batches, %d duplicates dropped, %d runs, %d spills)\n",
			st.Sources, *clusterRoot, st.Batches, st.DupBatches, len(runs), st.Spills)
		db = analysis.NewDB(runs)
	} else {
		fmt.Println("uucs-harvest: measuring discomfort CDFs (controlled study)...")
		res, err := study.Run(study.DefaultConfig())
		if err != nil {
			fatal(err)
		}
		db = res.DB
	}
	ceilings := harvest.CeilingsFromStudy(db, *target)
	fmt.Printf("per-task CPU ceilings at the %.0f%% level: %v\n\n", *target*100, ceilings)

	fleet, err := comfort.SamplePopulation(*users, comfort.DefaultPopulation(), *seed)
	if err != nil {
		fatal(err)
	}
	day := harvest.DefaultDay()
	day.Hours = *hours
	policies := []func() harvest.Policy{
		func() harvest.Policy { return harvest.ScreensaverOnly{Delay: 600, Max: 1} },
		func() harvest.Policy { return harvest.FixedLevel{L: *fixed, Max: 1} },
		func() harvest.Policy { return &harvest.CDFThrottle{Ceilings: ceilings, Max: 1} },
		func() harvest.Policy {
			return &harvest.CDFThrottle{Ceilings: ceilings, Max: 1, Backoff: 0.3, MinWorthwhile: 0.1}
		},
	}
	results, table, err := harvest.Compare(policies, fleet, day, core.NewEngine(), *seed)
	if err != nil {
		fatal(err)
	}
	fmt.Println(table)

	var ss, fb *harvest.Result
	for i := range results {
		switch results[i].Policy {
		case "screensaver-only":
			ss = &results[i]
		case "cdf+feedback":
			fb = &results[i]
		}
	}
	if ss != nil && fb != nil && ss.HarvestedCPUHours > 0 {
		fmt.Printf("cdf+feedback harvests %.1fx the screensaver default with %d/%d uninstalls\n",
			fb.HarvestedCPUHours/ss.HarvestedCPUHours, fb.Uninstalls, fb.Users)
	}
}

// startProfiles starts the optional -cpuprofile capture and returns a
// stop function that finalizes it and writes the -memprofile heap
// snapshot. Either path may be empty.
func startProfiles(cpuPath, memPath string, fail func(error)) func() {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fail(err)
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fail(err)
			}
			f.Close()
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "uucs-harvest:", err)
	os.Exit(1)
}
