// Package uucs is the public API of the UUCS reproduction — the
// Understanding User Comfort System of "Measuring and Understanding User
// Comfort With Resource Borrowing" (Gupta, Lin, Dinda; HPDC 2004).
//
// The system measures how resource borrowing (of CPU time, memory space
// and disk bandwidth) relates to end-user comfort. A client executes
// testcases that exercise resources according to parameterized exercise
// functions while a user works in the foreground; the moment the user
// expresses discomfort is recorded, and collections of such runs are
// reduced to empirical CDFs and derived metrics (f_d, c_0.05, c_a) that
// tell an implementor how aggressively each resource can be borrowed.
//
// Layering, bottom to top:
//
//   - Testcases and exercise functions (step, ramp, sin, saw, expexp,
//     exppar): NewTestcase, Step, Ramp, ControlledSuite, ...
//   - The simulated host (the substitute for the paper's Windows XP
//     machines): StudyMachine, NewMachine.
//   - Foreground application models (Word, Powerpoint, IE, Quake III):
//     NewApp.
//   - Synthetic users (the substitute for the paper's 33 participants):
//     SamplePopulation.
//   - The run engine: NewEngine, (*Engine).Execute.
//   - Studies and analysis: RunControlledStudy, RunInternetStudy,
//     NewDB and the figure/table computations.
//   - The client/server system: NewServer, NewClient, OpenStore.
//   - The §5 advice: NewThrottle.
//
// The quickest start is the controlled study:
//
//	res, err := uucs.RunControlledStudy(uucs.DefaultStudyConfig())
//	if err != nil { ... }
//	fmt.Println(res.RenderAll()) // every figure of the paper's §3
package uucs

import (
	"uucs/internal/analysis"
	"uucs/internal/apps"
	"uucs/internal/client"
	"uucs/internal/comfort"
	"uucs/internal/core"
	"uucs/internal/harvest"
	"uucs/internal/hostsim"
	"uucs/internal/internetstudy"
	"uucs/internal/protocol"
	"uucs/internal/server"
	"uucs/internal/stats"
	"uucs/internal/study"
	"uucs/internal/testcase"
	"uucs/internal/throttle"
)

// Testcases and exercise functions.
type (
	// Testcase encodes the details of resource borrowing for one run.
	Testcase = testcase.Testcase
	// ExerciseFunction is a sampled contention time series.
	ExerciseFunction = testcase.ExerciseFunction
	// Resource identifies CPU, Memory or Disk.
	Resource = testcase.Resource
	// Task identifies the foreground context.
	Task = testcase.Task
	// Shape identifies an exercise-function family.
	Shape = testcase.Shape
)

// Resources.
const (
	CPU    = testcase.CPU
	Memory = testcase.Memory
	Disk   = testcase.Disk
)

// Controlled-study tasks.
const (
	Word       = testcase.Word
	Powerpoint = testcase.Powerpoint
	IE         = testcase.IE
	Quake      = testcase.Quake
)

// Exercise-function constructors (paper Figure 3).
var (
	Step   = testcase.Step
	Ramp   = testcase.Ramp
	Sin    = testcase.Sin
	Saw    = testcase.Saw
	Blank  = testcase.Blank
	ExpExp = testcase.ExpExp
	ExpPar = testcase.ExpPar
)

// NewTestcase returns an empty testcase with the given id and rate.
func NewTestcase(id string, rate float64) *Testcase { return testcase.New(id, rate) }

// ControlledSuite returns the paper's Figure 8 testcases for one task.
func ControlledSuite(task Task) ([]*Testcase, error) { return testcase.ControlledSuite(task) }

// GenerateTestcases produces a randomized Internet-study population.
func GenerateTestcases(prefix string, cfg testcase.GeneratorConfig, seed uint64) ([]*Testcase, error) {
	return testcase.Generate(prefix, cfg, stats.NewStream(seed))
}

// DefaultGeneratorConfig mirrors the paper's Internet-study emphasis.
var DefaultGeneratorConfig = testcase.DefaultGeneratorConfig

// Host simulation.
type (
	// MachineConfig describes simulated hardware.
	MachineConfig = hostsim.Config
	// Machine is one simulated host during one run.
	Machine = hostsim.Machine
	// NoiseProfile parameterizes background OS activity.
	NoiseProfile = hostsim.NoiseProfile
)

var (
	// StudyMachine is the controlled study's hardware (Figure 7).
	StudyMachine = hostsim.StudyMachine
	// DefaultNoise is the quiescent-desktop background profile.
	DefaultNoise = hostsim.DefaultNoise
	// NoNoise disables background activity.
	NoNoise = hostsim.NoNoise
)

// NewMachine builds a simulated host.
func NewMachine(cfg MachineConfig, noise NoiseProfile, seed uint64) (*Machine, error) {
	return hostsim.NewMachine(cfg, noise, seed)
}

// Application models.
type App = apps.App

// NewApp returns the foreground model for a controlled-study task.
func NewApp(task Task) (App, error) { return apps.New(task) }

// NewMediaPlayer returns the video-playback model — a fifth context
// beyond the paper's four tasks.
var (
	NewMediaPlayer     = apps.NewMediaPlayer
	DefaultMediaParams = apps.DefaultMediaParams
)

// Exercise-function manipulation tools (the paper's Figure 2 toolchain).
var (
	ScaleFunction = testcase.Scale
	SliceFunction = testcase.Slice
	Concat        = testcase.Concat
	Repeat        = testcase.Repeat
	ClampFunction = testcase.Clamp
	ZoomRamp      = testcase.ZoomRamp
)

// Users.
type (
	// User is one synthetic participant.
	User = comfort.User
	// PopulationParams holds the tolerance distributions.
	PopulationParams = comfort.PopulationParams
)

// DefaultPopulation is the calibrated study population.
var DefaultPopulation = comfort.DefaultPopulation

// SamplePopulation draws n users deterministically.
func SamplePopulation(n int, p PopulationParams, seed uint64) ([]*User, error) {
	return comfort.SamplePopulation(n, p, seed)
}

// Run engine.
type (
	// Engine executes testcases.
	Engine = core.Engine
	// Run is one testcase execution record.
	Run = core.Run
)

// Run outcomes.
const (
	Discomfort = core.Discomfort
	Exhausted  = core.Exhausted
)

// NewEngine returns an engine for the study machine.
func NewEngine() *Engine { return core.NewEngine() }

// EncodeRuns and DecodeRuns move run records through the text format.
var (
	EncodeRuns = core.EncodeRuns
	DecodeRuns = core.DecodeRuns
)

// Studies.
type (
	// StudyConfig parameterizes the controlled study.
	StudyConfig = study.Config
	// StudyResults carries the runs and every figure of §3.
	StudyResults = study.Results
	// FleetConfig parameterizes the Internet-wide study.
	FleetConfig = internetstudy.Config
	// FleetResults carries the fleet outcome.
	FleetResults = internetstudy.Results
)

var (
	// DefaultStudyConfig mirrors the paper (33 users).
	DefaultStudyConfig = study.DefaultConfig
	// DefaultFleetConfig mirrors the paper's ~100-host study.
	DefaultFleetConfig = internetstudy.DefaultConfig
	// HostSpeedEffect answers the paper's raw-host-speed question.
	HostSpeedEffect = internetstudy.HostSpeedEffect
)

// RunControlledStudy executes the paper's §3 study.
func RunControlledStudy(cfg StudyConfig) (*StudyResults, error) { return study.Run(cfg) }

// RunInternetStudy executes the paper's §4 fleet study.
func RunInternetStudy(cfg FleetConfig) (*FleetResults, error) { return internetstudy.Run(cfg) }

// Analysis.
type (
	// DB is the in-memory result database of the analysis phase.
	DB = analysis.DB
	// Metrics is one f_d / c_0.05 / c_a cell.
	Metrics = analysis.Metrics
	// CDF is an empirical discomfort CDF.
	CDF = stats.CDF
)

var (
	// NewDB imports run records for analysis.
	NewDB = analysis.NewDB
	// MetricsCell looks up a table cell.
	MetricsCell = analysis.Cell
	// NewCDF builds an empirical CDF directly.
	NewCDF = stats.NewCDF
	// KMCurve builds a censoring-corrected Kaplan-Meier discomfort
	// estimate from run records (exhausted runs are right-censored).
	KMCurve = analysis.KMCurve
	// KaplanMeier estimates a survival curve from raw censored levels.
	KaplanMeier = stats.KaplanMeier
)

// KMPoint is one step of a Kaplan-Meier discomfort curve.
type KMPoint = stats.KMPoint

// KMPointC05 returns the censoring-corrected c_0.05 from a KM curve.
func KMPointC05(curve []KMPoint) (float64, bool) { return stats.KMQuantile(curve, 0.05) }

// RunAblations reruns the controlled study with one model mechanism
// removed at a time (see internal/study).
var (
	RunAblations    = study.RunAblations
	RenderAblations = study.RenderAblations
	StudyAblations  = study.Ablations
)

// Client/server system.
type (
	// Server is the UUCS server.
	Server = server.Server
	// Client is the UUCS client.
	Client = client.Client
	// ClientStore is the client's text-file storage.
	ClientStore = client.Store
	// Snapshot is the registration machine description.
	Snapshot = protocol.Snapshot
)

// NewServer returns an empty server.
func NewServer(seed uint64) *Server { return server.New(seed) }

// OpenStore opens a client store directory.
func OpenStore(dir string) (*ClientStore, error) { return client.OpenStore(dir) }

// NewClient builds a client over a store.
func NewClient(store *ClientStore, snap Snapshot, engine *Engine, seed uint64) (*Client, error) {
	return client.New(store, snap, engine, seed)
}

// Harvest-policy evaluation (§1 motivation, §5 advice): how much work a
// borrowing policy extracts from a fleet and how many users it annoys.
type (
	// HarvestPolicy decides the borrowing level per scheduling window.
	HarvestPolicy = harvest.Policy
	// HarvestDay parameterizes the simulated fleet day.
	HarvestDay = harvest.Day
	// HarvestResult aggregates one policy's day.
	HarvestResult = harvest.Result
	// HarvestContext is what a policy observes per scheduling window.
	HarvestContext = harvest.Context
)

var (
	// DefaultHarvestDay is an eight-hour office day.
	DefaultHarvestDay = harvest.DefaultDay
	// EvaluateHarvest runs one policy over a fleet day.
	EvaluateHarvest = harvest.Evaluate
	// CompareHarvest evaluates several policies and renders a table.
	CompareHarvest = harvest.Compare
	// HarvestCeilingsFromStudy derives per-task CPU ceilings from study
	// results.
	HarvestCeilingsFromStudy = harvest.CeilingsFromStudy
)

// Throttle (§5 advice to implementors).
type Throttle = throttle.Throttle

// NewThrottle builds a CDF-driven borrowing throttle.
func NewThrottle(cdf *CDF, target, maxLevel float64, opts ...throttle.Option) (*Throttle, error) {
	return throttle.New(cdf, target, maxLevel, opts...)
}

// Throttle options.
var (
	WithBackoff  = throttle.WithBackoff
	WithRecovery = throttle.WithRecovery
)
