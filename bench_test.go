package uucs_test

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (DESIGN.md carries the experiment index):
//
//	Fig. 3   BenchmarkFig03ExerciseFunctions
//	Fig. 4   BenchmarkFig04StepRamp
//	Fig. 8   BenchmarkFig08Suite
//	Fig. 9   BenchmarkFig09Breakdown
//	Fig. 10  BenchmarkFig10CDFCPU
//	Fig. 11  BenchmarkFig11CDFMemory
//	Fig. 12  BenchmarkFig12CDFDisk
//	Fig. 13  BenchmarkFig13Sensitivity
//	Fig. 14  BenchmarkFig14Fd
//	Fig. 15  BenchmarkFig15C005
//	Fig. 16  BenchmarkFig16Ca
//	Fig. 17  BenchmarkFig17Skill
//	Fig. 18  BenchmarkFig18Grid
//	§3.3.5   BenchmarkFrogInPot
//	§2.2     BenchmarkExerciserFidelityCPU / BenchmarkExerciserFidelityDisk
//	§3       BenchmarkControlledStudy (the full pipeline)
//	§4       BenchmarkInternetStudy
//	§4       BenchmarkServerIngest (fleet-scale server intake)
//	§5       BenchmarkThrottle
//
// Figure-shaped outputs are additionally reported as custom benchmark
// metrics (e.g. fd_cpu) so `go test -bench` output doubles as a compact
// reproduction record; EXPERIMENTS.md holds the full paper-vs-measured
// comparison.

import (
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"uucs"
	"uucs/internal/analysis"
	"uucs/internal/cluster"
	"uucs/internal/harvest"
	"uucs/internal/hostload"
	"uucs/internal/hostpop"
	"uucs/internal/hostsim"
	"uucs/internal/internetstudy"
	"uucs/internal/loadgen"
	"uucs/internal/server"
	"uucs/internal/stats"
	"uucs/internal/study"
	"uucs/internal/testcase"
)

var (
	benchOnce sync.Once
	benchRes  *study.Results
	benchErr  error
)

// studyFixture runs the full controlled study once for all figure
// benchmarks; the study itself is measured by BenchmarkControlledStudy.
func studyFixture(b *testing.B) *study.Results {
	b.Helper()
	benchOnce.Do(func() {
		benchRes, benchErr = study.Run(study.DefaultConfig())
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchRes
}

func BenchmarkFig03ExerciseFunctions(b *testing.B) {
	s := stats.NewStream(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = testcase.Step(2, 120, 40, 1)
		_ = testcase.Ramp(2, 120, 1)
		_ = testcase.Sin(2, 30, 120, 1)
		_ = testcase.Saw(2, 30, 120, 1)
		_ = testcase.ExpExp(0.2, 2, 120, 1, s)
		_ = testcase.ExpPar(0.2, 0.5, 1.5, 120, 1, s)
	}
}

func BenchmarkFig04StepRamp(b *testing.B) {
	b.ReportAllocs()
	sink := 0.0
	for i := 0; i < b.N; i++ {
		step := testcase.Step(2.0, 120, 40, 1)
		ramp := testcase.Ramp(2.0, 120, 1)
		for t := 0.0; t < 120; t++ {
			sink += step.Value(t) + ramp.Value(t)
		}
	}
	_ = sink
}

func BenchmarkFig08Suite(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := testcase.ControlledSuiteAll(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig09Breakdown(b *testing.B) {
	res := studyFixture(b)
	b.ResetTimer()
	var rows []analysis.Breakdown
	for i := 0; i < b.N; i++ {
		rows = res.DB.Breakdown()
	}
	b.ReportMetric(rows[0].NoiseFloor(), "noisefloor_total")
}

func benchCDF(b *testing.B, res testcase.Resource, metric string) {
	sr := studyFixture(b)
	b.ResetTimer()
	var rendered string
	var c *stats.CDF
	for i := 0; i < b.N; i++ {
		c = sr.DB.ResourceCDF(res)
		rendered = c.Render("bench", 60, 12, 0)
	}
	if !strings.Contains(rendered, "DfCount") {
		b.Fatal("render failed")
	}
	if v, ok := c.Percentile(0.05); ok {
		b.ReportMetric(v, metric)
	}
}

func BenchmarkFig10CDFCPU(b *testing.B)    { benchCDF(b, testcase.CPU, "c05_cpu") }
func BenchmarkFig11CDFMemory(b *testing.B) { benchCDF(b, testcase.Memory, "c05_mem") }
func BenchmarkFig12CDFDisk(b *testing.B)   { benchCDF(b, testcase.Disk, "c05_disk") }

func BenchmarkFig13Sensitivity(b *testing.B) {
	res := studyFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		table := res.DB.MetricsTable()
		_ = analysis.SensitivityTable(table)
	}
}

func benchMetric(b *testing.B, report func(*testing.B, []analysis.Metrics)) {
	res := studyFixture(b)
	b.ResetTimer()
	var table []analysis.Metrics
	for i := 0; i < b.N; i++ {
		table = res.DB.MetricsTable()
	}
	report(b, table)
}

func BenchmarkFig14Fd(b *testing.B) {
	benchMetric(b, func(b *testing.B, table []analysis.Metrics) {
		if m, err := analysis.Cell(table, "", testcase.CPU); err == nil {
			b.ReportMetric(m.Fd, "fd_cpu_total")
		}
		if m, err := analysis.Cell(table, "", testcase.Memory); err == nil {
			b.ReportMetric(m.Fd, "fd_mem_total")
		}
		if m, err := analysis.Cell(table, "", testcase.Disk); err == nil {
			b.ReportMetric(m.Fd, "fd_disk_total")
		}
	})
}

func BenchmarkFig15C005(b *testing.B) {
	benchMetric(b, func(b *testing.B, table []analysis.Metrics) {
		for _, res := range testcase.Resources() {
			if m, err := analysis.Cell(table, "", res); err == nil && m.HasC05 {
				b.ReportMetric(m.C05, "c05_"+string(res))
			}
		}
	})
}

func BenchmarkFig16Ca(b *testing.B) {
	benchMetric(b, func(b *testing.B, table []analysis.Metrics) {
		for _, res := range testcase.Resources() {
			if m, err := analysis.Cell(table, "", res); err == nil && m.HasCa {
				b.ReportMetric(m.Ca, "ca_"+string(res))
			}
		}
	})
}

func BenchmarkFig17Skill(b *testing.B) {
	res := studyFixture(b)
	users := res.UserByID()
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		n = len(res.DB.SkillDifferences(users, 0.05))
	}
	b.ReportMetric(float64(n), "significant_rows")
}

func BenchmarkFig18Grid(b *testing.B) {
	res := studyFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, task := range testcase.Tasks() {
			for _, r := range testcase.Resources() {
				_ = res.DB.TaskResourceCDF(task, r)
			}
		}
	}
}

func BenchmarkFrogInPot(b *testing.B) {
	res := studyFixture(b)
	b.ResetTimer()
	var diff float64
	for i := 0; i < b.N; i++ {
		fr, err := res.DB.FrogInPot(testcase.Powerpoint, testcase.CPU)
		if err != nil {
			b.Fatal(err)
		}
		diff = fr.Result.Diff
	}
	b.ReportMetric(diff, "ramp_minus_step")
}

// BenchmarkControlledStudy measures the full §3 pipeline: 33 users x 4
// tasks x 8 testcases through the machine, app and user models, at the
// default worker count (GOMAXPROCS).
func BenchmarkControlledStudy(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := study.Run(study.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStudyParallel tracks the worker-pool speedup of the full
// study at fixed worker counts; w1 is the serial baseline. Results are
// bit-identical across all variants (TestStudyParallelMatchesSerial),
// so this measures scheduling alone.
func BenchmarkStudyParallel(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
			cfg := study.DefaultConfig()
			cfg.Workers = workers
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := study.Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkInternetStudyParallel tracks the per-host fan-out of the
// fleet simulation at fixed worker counts.
func BenchmarkInternetStudyParallel(b *testing.B) {
	for _, workers := range []int{1, 4} {
		workers := workers
		b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := internetstudy.DefaultConfig(b.TempDir())
				cfg.Hosts = 12
				cfg.RunsPerHost = 4
				cfg.TestcaseCount = 60
				cfg.Workers = workers
				if _, err := internetstudy.Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExerciserFidelityCPU reproduces the paper's §2.2 CPU
// verification: an equal-priority thread must run at 1/(1+c).
func BenchmarkExerciserFidelityCPU(b *testing.B) {
	ms := hostsim.DefaultMicroSim()
	var share float64
	for i := 0; i < b.N; i++ {
		var err error
		share, err = ms.MeasureCPUShare(1.5, 60, 7)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(share, "share_at_c1.5") // paper's worked example: 40%
}

// BenchmarkExerciserFidelityDisk reproduces the §2.2 disk verification
// (verified to contention 7).
func BenchmarkExerciserFidelityDisk(b *testing.B) {
	ms := hostsim.DefaultMicroSim()
	var share float64
	for i := 0; i < b.N; i++ {
		var err error
		share, err = ms.MeasureDiskShare(7, 60, hostsim.StudyMachine(), 7)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(share, "share_at_c7") // ~1/8
}

// BenchmarkInternetStudy measures a compact §4 fleet simulation
// (clients, server, loopback protocol, analysis).
func BenchmarkInternetStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := internetstudy.DefaultConfig(b.TempDir())
		cfg.Hosts = 12
		cfg.RunsPerHost = 4
		cfg.TestcaseCount = 60
		res, err := internetstudy.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Runs) == 0 {
			b.Fatal("no runs")
		}
	}
}

// BenchmarkServerIngest measures the server's concurrent ingest path
// end to end — wire codec, shard dedup, group-commit journal fsyncs —
// with 16 closed-loop clients over loopback TCP. ns/op is the cost per
// acked batch; the batches/sec metric is the sustained rate.
func BenchmarkServerIngest(b *testing.B) {
	rep, err := loadgen.Run(loadgen.Config{
		Clients: 16, Batches: b.N, RunsPerBatch: 3,
		StateDir: b.TempDir(), Net: "tcp", Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	if rep.Lost > 0 || rep.Duplicated > 0 {
		b.Fatalf("ingest broke durability: lost=%d duplicated=%d", rep.Lost, rep.Duplicated)
	}
	b.ReportMetric(rep.BatchesPerSec, "batches/sec")
}

// BenchmarkClusterIngest measures the routed 3-node ingest tier with
// the same closed-loop fleet as BenchmarkServerIngest. ns/op is the
// cost per acked batch through the router (proxy hop + journal fsync +
// replica ship); batches/sec is the sustained cluster rate, which must
// hold at least the single-node baseline per node.
func BenchmarkClusterIngest(b *testing.B) {
	rep, err := loadgen.Run(loadgen.Config{
		Clients: 16, Batches: b.N, RunsPerBatch: 3,
		StateDir: b.TempDir(), Net: "tcp", Seed: 1,
		Nodes: []string{"n1", "n2", "n3"},
	})
	if err != nil {
		b.Fatal(err)
	}
	if rep.Lost > 0 || rep.Duplicated > 0 {
		b.Fatalf("cluster ingest broke durability: lost=%d duplicated=%d", rep.Lost, rep.Duplicated)
	}
	b.ReportMetric(rep.BatchesPerSec, "batches/sec")
}

// clusterStateFixture lays down a real routed 3-node cluster's state
// tree (node journals, replica journals, multi-segment rotation) by
// driving it with ingest load — the shared fixture for the cold-path
// benchmarks. Replica shipping makes every batch appear at least
// twice under the root, so a merge over it exercises the dedup path.
func clusterStateFixture(b *testing.B) (string, *loadgen.Report) {
	b.Helper()
	root := b.TempDir()
	rep, err := loadgen.Run(loadgen.Config{
		Clients: 8, Batches: 600, RunsPerBatch: 8,
		StateDir: root, Net: "mem", Seed: 1,
		Nodes:               []string{"n1", "n2", "n3"},
		JournalSegmentBytes: 64 << 10,
	})
	if err != nil {
		b.Fatal(err)
	}
	if rep.Lost > 0 || rep.Duplicated > 0 {
		b.Fatalf("fixture broke durability: lost=%d duplicated=%d", rep.Lost, rep.Duplicated)
	}
	return root, rep
}

// BenchmarkColdRestart measures the crash-recovery path: a full state
// replay over the multi-segment journal a real ingest run laid down.
// Sealed segments decode on parallel workers (0 = GOMAXPROCS) and
// apply through the per-shard queues; the restored state is
// bit-identical to a serial replay at any worker count
// (TestParallelReplayMatchesSerial), so this measures the cold path
// alone.
func BenchmarkColdRestart(b *testing.B) {
	dir := b.TempDir()
	rep, err := loadgen.Run(loadgen.Config{
		Clients: 8, Batches: 1200, RunsPerBatch: 8,
		StateDir: dir, Net: "mem", Seed: 1,
		JournalSegmentBytes: 64 << 10,
	})
	if err != nil {
		b.Fatal(err)
	}
	if rep.Lost > 0 || rep.Duplicated > 0 {
		b.Fatalf("fixture broke durability: lost=%d duplicated=%d", rep.Lost, rep.Duplicated)
	}
	b.ResetTimer()
	restored := 0
	for i := 0; i < b.N; i++ {
		srv := server.New(1)
		if err := srv.LoadState(dir); err != nil {
			b.Fatal(err)
		}
		restored = len(srv.Results())
	}
	if uint64(restored) != rep.Runs {
		b.Fatalf("restored %d runs, want %d", restored, rep.Runs)
	}
	b.ReportMetric(float64(restored), "runs_restored")
}

// BenchmarkFailoverPromote measures the availability-critical half of
// promote-on-crash: replaying a dead primary's shipped replica journal
// into a fresh server. Promote is server.OpenState over the replica
// dir; LoadState is its replay phase, which dominates the takeover
// window.
func BenchmarkFailoverPromote(b *testing.B) {
	root, _ := clusterStateFixture(b)
	replicas, err := filepath.Glob(filepath.Join(root, "node-*", "replica-*"))
	if err != nil || len(replicas) == 0 {
		b.Fatalf("no replica dirs under %s (err=%v)", root, err)
	}
	dir := replicas[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv := server.New(1)
		if err := srv.LoadState(dir); err != nil {
			b.Fatal(err)
		}
		if len(srv.Results()) == 0 {
			b.Fatal("replica journal replayed to empty state")
		}
	}
}

// BenchmarkClusterMerge measures the deterministic merge over every
// node and replica journal of a 3-node cluster: parallel per-source
// scans, shared dedup, and the streaming k-way heap merge. The merged
// sequence is byte-identical at any worker count and any spill
// threshold (TestMergeStreamingMatchesSerial).
func BenchmarkClusterMerge(b *testing.B) {
	root, rep := clusterStateFixture(b)
	b.ResetTimer()
	merged := 0
	for i := 0; i < b.N; i++ {
		runs, _, err := cluster.MergedRuns(root)
		if err != nil {
			b.Fatal(err)
		}
		merged = len(runs)
	}
	if uint64(merged) != rep.Runs {
		b.Fatalf("merged %d runs, want %d", merged, rep.Runs)
	}
	b.ReportMetric(float64(merged), "runs_merged")
}

// BenchmarkThrottle measures the §5 feedback throttle control loop.
func BenchmarkThrottle(b *testing.B) {
	res := studyFixture(b)
	cdf := res.DB.ResourceCDF(testcase.CPU)
	th, err := uucs.NewThrottle(cdf, 0.05, 10)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%100 == 0 {
			th.OnFeedback()
		} else {
			th.OnQuiet(30)
		}
	}
	b.ReportMetric(th.Ceiling(), "ceiling_c05")
}

// BenchmarkRunExecution measures a single 2-minute run per task — the
// unit of work everything else multiplies.
func BenchmarkRunExecution(b *testing.B) {
	users, err := uucs.SamplePopulation(1, uucs.DefaultPopulation(), 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, task := range testcase.Tasks() {
		task := task
		b.Run(string(task), func(b *testing.B) {
			app, err := uucs.NewApp(task)
			if err != nil {
				b.Fatal(err)
			}
			suite, err := testcase.ControlledSuite(task)
			if err != nil {
				b.Fatal(err)
			}
			engine := uucs.NewEngine()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := engine.Execute(suite[0], app, users[0], uint64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblations runs the model-ablation suite: five controlled
// studies, each with one mechanism removed (see internal/study).
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := study.RunAblations(study.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		if len(results) != 5 {
			b.Fatalf("ablations = %d", len(results))
		}
	}
}

// BenchmarkKaplanMeier measures the censoring-corrected survival
// estimate over the study's CPU runs.
func BenchmarkKaplanMeier(b *testing.B) {
	res := studyFixture(b)
	b.ResetTimer()
	var c05 float64
	for i := 0; i < b.N; i++ {
		curve, err := res.DB.KMResourceCurve(testcase.CPU)
		if err != nil {
			b.Fatal(err)
		}
		if v, ok := analysis.KMC05(curve); ok {
			c05 = v
		}
	}
	b.ReportMetric(c05, "km_c05_cpu")
}

// BenchmarkHostLoadTrace measures realistic host-load trace generation
// (the paper's CPU-exerciser lineage) at one hour of 1 Hz samples.
func BenchmarkHostLoadTrace(b *testing.B) {
	m := hostload.DefaultModel()
	b.ReportAllocs()
	var ac float64
	for i := 0; i < b.N; i++ {
		f, err := m.Generate(3600, 1, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		ac = hostload.Autocorrelation(f.Values, 1)
	}
	b.ReportMetric(ac, "lag1_autocorr")
}

// BenchmarkHarvestPolicies measures the §1/§5 policy evaluation: a fleet
// day per policy through the full study machinery.
func BenchmarkHarvestPolicies(b *testing.B) {
	res := studyFixture(b)
	ceilings := harvest.CeilingsFromStudy(res.DB, 0.05)
	users := res.Users[:16]
	day := harvest.DefaultDay()
	day.Hours = 4
	b.ResetTimer()
	var gain float64
	for i := 0; i < b.N; i++ {
		ss, err := harvest.Evaluate(func() harvest.Policy {
			return harvest.ScreensaverOnly{Delay: 600, Max: 1}
		}, users, day, nil, 11)
		if err != nil {
			b.Fatal(err)
		}
		fb, err := harvest.Evaluate(func() harvest.Policy {
			return &harvest.CDFThrottle{Ceilings: ceilings, Max: 1, Backoff: 0.3, MinWorthwhile: 0.1}
		}, users, day, nil, 11)
		if err != nil {
			b.Fatal(err)
		}
		gain = fb.HarvestedCPUHours / ss.HarvestedCPUHours
	}
	b.ReportMetric(gain, "harvest_gain_vs_screensaver")
}

// BenchmarkInternetStudyMillionHosts is the streaming engine's gate
// benchmark: a scaled-down slice of the million-host configuration —
// correlated host population, diurnal availability, crash churn, and
// streamed bounded-memory aggregation — so CI tracks the per-run cost
// of the exact path the 10^6-host study exercises.
func BenchmarkInternetStudyMillionHosts(b *testing.B) {
	b.ReportAllocs()
	var folded uint64
	for i := 0; i < b.N; i++ {
		cfg := internetstudy.DefaultStreamConfig()
		cfg.Hosts = 4000
		cfg.RunsPerHost = 2
		cfg.TestcaseCount = 100
		cfg.Churn = hostpop.DefaultChurn()
		res, err := internetstudy.RunStreaming(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Agg.Folded == 0 {
			b.Fatal("no folded runs")
		}
		folded = res.Agg.Folded
	}
	b.ReportMetric(float64(folded), "runs_folded")
}
