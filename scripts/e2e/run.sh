#!/usr/bin/env bash
# Process-level end-to-end chaos suite: real binaries, real TCP, a real
# kill -9 inside the journal's write->fsync window.
#
# What the crash test proves: the server is SIGKILLed (by its own
# -crash-after hook) between a journaled batch's buffered write and its
# fsync — the exact window where bytes exist only in the page cache and
# no ack has been sent. The restarted server replays the journal, the
# clients retry their unacked uploads against it, and the final dataset
# must hold every executed run exactly once: nothing acked is lost,
# nothing retried is double-counted.
#
# Usage:
#   scripts/e2e/run.sh           # full suite: smoke + seeds + USE verdict
#   scripts/e2e/run.sh -smoke    # crash/restart/convergence + uucs-top
#   scripts/e2e/run.sh -seeds    # replay scripts/e2e/regression_seeds.json
#
# Set E2E_BIN to a directory of prebuilt uucs-* binaries to skip the
# build (CI builds once and reuses across jobs). Set E2E_PROTOCOL to
# v2 or v3 to pin every client's wire framing (default: auto, the
# negotiated path); with v3 the smoke also asserts each client actually
# registered over the binary framing, so the crash window is exercised
# with verbatim-journaled binary frames.
set -euo pipefail

REPO="$(cd "$(dirname "$0")/../.." && pwd)"
cd "$REPO"

MODE="${1:-all}"
PROTO="${E2E_PROTOCOL:-auto}"

WORK="$(mktemp -d /tmp/uucs-e2e.XXXXXX)"
SERVER_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

say()  { printf 'e2e: %s\n' "$*"; }
fail() { printf 'e2e: FAIL: %s\n' "$*" >&2; exit 1; }

# --- binaries ---------------------------------------------------------

if [ -n "${E2E_BIN:-}" ]; then
    BIN="$E2E_BIN"
    for b in uucs-server uucs-client uucs-top uucs-loadgen; do
        [ -x "$BIN/$b" ] || fail "E2E_BIN=$BIN is missing $b"
    done
    say "using prebuilt binaries from $BIN"
else
    BIN="$WORK/bin"
    say "building binaries into $BIN"
    go build -o "$BIN/" ./cmd/uucs-server ./cmd/uucs-client ./cmd/uucs-top ./cmd/uucs-loadgen
fi

# pick_free_port: probe for a free loopback port instead of trusting a
# fixed one, so parallel CI jobs (and the multi-node harness, which
# needs several servers at once) can't collide. Candidates are drawn
# from a wide randomized range and checked with a connect probe; the
# chosen port is used for both the first server and its post-crash
# restart (the restart must rebind the same address the round-1 clients
# are retrying against).
pick_free_port() {
    local p try
    for try in $(seq 1 50); do
        p=$((20000 + RANDOM % 20000))
        if ! (exec 3<>"/dev/tcp/127.0.0.1/$p") 2>/dev/null; then
            printf '%s\n' "$p"
            return 0
        fi
        exec 3>&- 2>/dev/null || true
    done
    fail "no free port found after 50 probes"
}

# wait_for_line FILE PATTERN: poll FILE until PATTERN appears (10s cap).
wait_for_line() {
    local file="$1" pattern="$2" i
    for i in $(seq 1 100); do
        grep -q "$pattern" "$file" 2>/dev/null && return 0
        sleep 0.1
    done
    fail "timed out waiting for '$pattern' in $file (contents: $(cat "$file" 2>/dev/null))"
}

# --- the crash/restart/convergence smoke ------------------------------

smoke() {
    local CLIENTS=3 RUNS=4 ROUNDS=2
    local STATE="$WORK/state" LOG1="$WORK/server1.log" LOG2="$WORK/server2.log"
    local OUT="$WORK/results.txt"

    # Journal op budget for round 1: 1 testcase op + $CLIENTS
    # registrations + $CLIENTS upload batches. Crashing after
    # (1 + CLIENTS + 1) ops lands inside the upload wave: at least one
    # client's batch is written but not yet fsynced or acked.
    local CRASH_AFTER=$((1 + CLIENTS + 1))

    local ADDR DEBUG_ADDR
    ADDR="127.0.0.1:$(pick_free_port)"

    say "round 1: server on $ADDR with -crash-after $CRASH_AFTER"
    "$BIN/uucs-server" -addr "$ADDR" -debug-addr 127.0.0.1:0 \
        -state "$STATE" -generate 30 -out "$OUT" -seed 7 \
        -crash-after "$CRASH_AFTER" >"$LOG1" 2>&1 &
    SERVER_PID=$!
    wait_for_line "$LOG1" 'listening on'

    say "round 1: $CLIENTS clients x $RUNS runs against $ADDR (protocol $PROTO)"
    local pids=() i
    for i in $(seq 1 "$CLIENTS"); do
        "$BIN/uucs-client" -server "$ADDR" -store "$WORK/client$i" \
            -hostname "e2e-host-$i" -seed "$((100 + i))" -runs "$RUNS" \
            -protocol "$PROTO" \
            -timeout 5s -retries 12 -retry-base 100ms -retry-max 1s \
            >"$WORK/client$i.round1.log" 2>&1 &
        pids+=($!)
    done

    # The server must die by its own hand: SIGKILL (exit 137), with the
    # crash marker proving the kill landed between write and fsync.
    local code=0
    wait "$SERVER_PID" || code=$?
    SERVER_PID=""
    [ "$code" -eq 137 ] || fail "server exited $code, want 137 (SIGKILL by -crash-after)"
    [ -f "$STATE/crash.marker" ] || fail "no crash.marker: the kill did not come from the crash hook"
    say "server killed inside the write->fsync window: $(cat "$STATE/crash.marker")"

    say "restarting server on $ADDR from the journal"
    "$BIN/uucs-server" -addr "$ADDR" -debug-addr 127.0.0.1:0 \
        -state "$STATE" -out "$OUT" -seed 7 >"$LOG2" 2>&1 &
    SERVER_PID=$!
    wait_for_line "$LOG2" 'listening on'
    grep -q 'restored' "$LOG2" || fail "restart did not restore from $STATE"
    DEBUG_ADDR="$(sed -n 's|.*debug listener on http://\([0-9.]*:[0-9]*\)/.*|\1|p' "$LOG2")"
    [ -n "$DEBUG_ADDR" ] || fail "could not parse debug address from $LOG2"

    # Round-1 clients retry their unacked uploads against the restarted
    # server; every one must converge and exit 0.
    for i in "${!pids[@]}"; do
        code=0
        wait "${pids[$i]}" || code=$?
        [ "$code" -eq 0 ] || fail "round-1 client $((i + 1)) exited $code: $(cat "$WORK/client$((i + 1)).round1.log")"
    done
    say "round 1 converged: all clients acked despite the crash"
    if [ "$PROTO" = "v3" ]; then
        for i in $(seq 1 "$CLIENTS"); do
            grep -q 'wire protocol v3' "$WORK/client$i.round1.log" \
                || fail "client $i did not register over the v3 framing: $(cat "$WORK/client$i.round1.log")"
        done
        say "all clients registered over the v3 binary framing"
    fi

    say "round 2: same stores, continuing sequence numbers"
    pids=()
    for i in $(seq 1 "$CLIENTS"); do
        "$BIN/uucs-client" -server "$ADDR" -store "$WORK/client$i" \
            -hostname "e2e-host-$i" -seed "$((100 + i))" -runs "$RUNS" \
            -protocol "$PROTO" \
            -timeout 5s -retries 12 -retry-base 100ms -retry-max 1s \
            >"$WORK/client$i.round2.log" 2>&1 &
        pids+=($!)
    done
    for i in "${!pids[@]}"; do
        code=0
        wait "${pids[$i]}" || code=$?
        [ "$code" -eq 0 ] || fail "round-2 client $((i + 1)) exited $code: $(cat "$WORK/client$((i + 1)).round2.log")"
    done

    say "checking the live USE snapshot via uucs-top -addr $DEBUG_ADDR"
    local top
    top="$("$BIN/uucs-top" -addr "$DEBUG_ADDR")"
    printf '%s\n' "$top" | sed 's/^/e2e:   /'
    printf '%s\n' "$top" | grep -q 'USE health' || fail "uucs-top printed no USE header"
    printf '%s\n' "$top" | grep -q 'journal-fsync' || fail "uucs-top shows no journal telemetry"

    say "graceful shutdown and final flush"
    kill -TERM "$SERVER_PID"
    wait "$SERVER_PID" || true
    SERVER_PID=""

    # Convergence: every executed run exactly once. Each client executed
    # RUNS runs per round; record framing is one 'run <id>' line each.
    local WANT=$((CLIENTS * RUNS * ROUNDS)) GOT
    GOT="$(grep -c '^run ' "$OUT" || true)"
    [ "$GOT" -eq "$WANT" ] || fail "dataset has $GOT runs, want exactly $WANT (lost or duplicated batches)"
    say "PASS: $GOT/$WANT runs survived the mid-fsync crash exactly once"
}

# --- the segmented-journal restart smoke ------------------------------

# restart_smoke: SIGKILL the server after rotation has sealed several
# journal segments, then prove the restart reassembles state from the
# multi-segment journal exactly once. Unlike smoke() the kill is
# external (kill -9 from here, not the -crash-after hook) and lands
# after seals are observed on disk, so the replay that follows crosses
# real segment boundaries.
restart_smoke() {
    local CLIENTS=3 RUNS=6 ROUNDS=2 WANT_SEGS=2
    local STATE="$WORK/segstate" LOG1="$WORK/segserver1.log" LOG2="$WORK/segserver2.log"
    local OUT="$WORK/segresults.txt"

    local ADDR
    ADDR="127.0.0.1:$(pick_free_port)"

    # Tiny segments so a handful of uploads seals several; a huge
    # -flush so no snapshot compacts the sealed segments away before
    # the kill.
    say "restart: server on $ADDR with -journal-segment-bytes 1024"
    "$BIN/uucs-server" -addr "$ADDR" -state "$STATE" -generate 30 \
        -out "$OUT" -seed 7 -flush 1h -journal-segment-bytes 1024 \
        >"$LOG1" 2>&1 &
    SERVER_PID=$!
    wait_for_line "$LOG1" 'listening on'

    say "restart: $CLIENTS clients x $RUNS runs against $ADDR (protocol $PROTO)"
    local pids=() i
    for i in $(seq 1 "$CLIENTS"); do
        "$BIN/uucs-client" -server "$ADDR" -store "$WORK/segclient$i" \
            -hostname "e2e-seg-host-$i" -seed "$((200 + i))" -runs "$RUNS" \
            -protocol "$PROTO" \
            -timeout 5s -retries 12 -retry-base 100ms -retry-max 1s \
            >"$WORK/segclient$i.round1.log" 2>&1 &
        pids+=($!)
    done

    # Wait until rotation has sealed at least WANT_SEGS segments, then
    # SIGKILL — no flush, no goodbye, segments and a possibly-torn
    # active journal left behind.
    local segs=0
    for i in $(seq 1 100); do
        segs="$(ls "$STATE"/journal-*.seg 2>/dev/null | wc -l)"
        [ "$segs" -ge "$WANT_SEGS" ] && break
        sleep 0.1
    done
    [ "$segs" -ge "$WANT_SEGS" ] || fail "only $segs journal segments sealed, want >= $WANT_SEGS"
    kill -9 "$SERVER_PID" 2>/dev/null || true
    wait "$SERVER_PID" 2>/dev/null || true
    SERVER_PID=""
    say "restart: server SIGKILLed with $segs sealed segments on disk"

    say "restart: server back on $ADDR from the segmented journal"
    "$BIN/uucs-server" -addr "$ADDR" -state "$STATE" -out "$OUT" -seed 7 \
        -flush 1h -journal-segment-bytes 1024 >"$LOG2" 2>&1 &
    SERVER_PID=$!
    wait_for_line "$LOG2" 'listening on'
    grep -q 'restored' "$LOG2" || fail "restart did not restore from $STATE"

    # Round-1 clients ride through the kill: every one must converge.
    local code
    for i in "${!pids[@]}"; do
        code=0
        wait "${pids[$i]}" || code=$?
        [ "$code" -eq 0 ] || fail "restart round-1 client $((i + 1)) exited $code: $(cat "$WORK/segclient$((i + 1)).round1.log")"
    done
    say "restart: round 1 converged across the kill"

    say "restart: round 2, same stores, continuing sequence numbers"
    pids=()
    for i in $(seq 1 "$CLIENTS"); do
        "$BIN/uucs-client" -server "$ADDR" -store "$WORK/segclient$i" \
            -hostname "e2e-seg-host-$i" -seed "$((200 + i))" -runs "$RUNS" \
            -protocol "$PROTO" \
            -timeout 5s -retries 12 -retry-base 100ms -retry-max 1s \
            >"$WORK/segclient$i.round2.log" 2>&1 &
        pids+=($!)
    done
    for i in "${!pids[@]}"; do
        code=0
        wait "${pids[$i]}" || code=$?
        [ "$code" -eq 0 ] || fail "restart round-2 client $((i + 1)) exited $code: $(cat "$WORK/segclient$((i + 1)).round2.log")"
    done

    say "restart: graceful shutdown and final flush"
    kill -TERM "$SERVER_PID"
    wait "$SERVER_PID" || true
    SERVER_PID=""

    local WANT=$((CLIENTS * RUNS * ROUNDS)) GOT
    GOT="$(grep -c '^run ' "$OUT" || true)"
    [ "$GOT" -eq "$WANT" ] || fail "segmented dataset has $GOT runs, want exactly $WANT (lost or duplicated batches)"
    say "PASS: $GOT/$WANT runs survived the multi-segment SIGKILL exactly once"
}

# --- seeded chaos regression replay -----------------------------------

seeds() {
    say "replaying scripts/e2e/regression_seeds.json"
    go test -count=1 -run TestRegressionSeeds ./internal/server ./internal/cluster \
        || fail "seed corpus replay failed"
    say "PASS: seed corpus replayed clean"
}

# --- the USE verdict under a slow modeled disk ------------------------

use_verdict() {
    say "loadgen with -fsync-cost 8ms must blame journal-fsync"
    local out
    out="$("$BIN/uucs-loadgen" -clients 8 -batches 200 -fsync-cost 8ms -state "$WORK/lgstate" -smoke)"
    printf '%s\n' "$out" | grep 'USE health' | sed 's/^/e2e:   /'
    printf '%s\n' "$out" | grep -q 'saturated: journal-fsync' \
        || fail "USE verdict did not name journal-fsync under an 8ms disk"
    say "PASS: USE verdict names the saturated resource"
}

case "$MODE" in
-smoke) smoke ;;
-restart) restart_smoke ;;
-seeds) seeds ;;
all)
    smoke
    restart_smoke
    seeds
    use_verdict
    ;;
*) fail "unknown mode $MODE (want -smoke, -restart, -seeds, or nothing)" ;;
esac

say "done"
