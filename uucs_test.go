package uucs_test

import (
	"testing"

	"uucs"
)

// The facade tests exercise the public API end to end at small scale;
// the internal packages carry the deep tests.

func TestFacadeTestcases(t *testing.T) {
	tc := uucs.NewTestcase("t", 1)
	tc.Functions[uucs.CPU] = uucs.Ramp(2, 60, 1)
	tc.Shape = "ramp"
	if err := tc.Validate(); err != nil {
		t.Fatal(err)
	}
	suite, err := uucs.ControlledSuite(uucs.Quake)
	if err != nil || len(suite) != 8 {
		t.Fatalf("suite: %d, %v", len(suite), err)
	}
	gen := uucs.DefaultGeneratorConfig()
	gen.Count = 10
	tcs, err := uucs.GenerateTestcases("x", gen, 1)
	if err != nil || len(tcs) != 10 {
		t.Fatalf("generate: %d, %v", len(tcs), err)
	}
}

func TestFacadeExecuteRun(t *testing.T) {
	engine := uucs.NewEngine()
	app, err := uucs.NewApp(uucs.Word)
	if err != nil {
		t.Fatal(err)
	}
	users, err := uucs.SamplePopulation(1, uucs.DefaultPopulation(), 3)
	if err != nil {
		t.Fatal(err)
	}
	tc := uucs.NewTestcase("t", 1)
	tc.Functions[uucs.CPU] = uucs.Blank(30, 1)
	run, err := engine.Execute(tc, app, users[0], 1)
	if err != nil {
		t.Fatal(err)
	}
	if run.Task != uucs.Word {
		t.Errorf("run task = %v", run.Task)
	}
}

func TestFacadeSmallStudy(t *testing.T) {
	cfg := uucs.DefaultStudyConfig()
	cfg.Users = 4
	res, err := uucs.RunControlledStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 4*4*8 {
		t.Fatalf("runs = %d", len(res.Runs))
	}
	cdf := res.DB.ResourceCDF(uucs.CPU)
	if cdf.N() == 0 {
		t.Fatal("empty CPU CDF")
	}
	th, err := uucs.NewThrottle(cdf, 0.05, 10)
	if err != nil {
		t.Fatal(err)
	}
	if th.Level() <= 0 {
		t.Errorf("throttle level = %v", th.Level())
	}
}

func TestFacadeMachine(t *testing.T) {
	m, err := uucs.NewMachine(uucs.StudyMachine(), uucs.NoNoise(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if end := m.CPUBurst(0, 0.01); end <= 0 {
		t.Errorf("burst end = %v", end)
	}
}

func TestFacadeClientServer(t *testing.T) {
	srv := uucs.NewServer(1)
	gen := uucs.DefaultGeneratorConfig()
	gen.Count = 12
	tcs, err := uucs.GenerateTestcases("s", gen, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.AddTestcases(tcs...); err != nil {
		t.Fatal(err)
	}
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	store, err := uucs.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	snap := uucs.Snapshot{Hostname: "h", OS: "linux", CPUGHz: 2, MemMB: 512}
	cl, err := uucs.NewClient(store, snap, uucs.NewEngine(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Register(addr); err != nil {
		t.Fatal(err)
	}
	st, err := cl.HotSync(addr)
	if err != nil {
		t.Fatal(err)
	}
	if st.NewTestcases == 0 {
		t.Error("no testcases synced")
	}
}

func TestFacadeManipulationTools(t *testing.T) {
	f := uucs.Ramp(4, 40, 1)
	half, err := uucs.ScaleFunction(f, 0.5)
	if err != nil || half.Max() > 2 {
		t.Fatalf("scale: %v, max %v", err, half.Max())
	}
	part, err := uucs.SliceFunction(f, 10, 20)
	if err != nil || part.Duration() != 10 {
		t.Fatalf("slice: %v, dur %v", err, part.Duration())
	}
	joined, err := uucs.Concat(part, part)
	if err != nil || joined.Duration() != 20 {
		t.Fatalf("concat: %v", err)
	}
	tiled, err := uucs.Repeat(part, 3)
	if err != nil || tiled.Duration() != 30 {
		t.Fatalf("repeat: %v", err)
	}
	capped, err := uucs.ClampFunction(f, 1)
	if err != nil || capped.Max() > 1 {
		t.Fatalf("clamp: %v", err)
	}
	tc, err := uucs.ZoomRamp("z", 2, 0.2, 60, 1)
	if err != nil || tc.PrimaryResource() != uucs.CPU {
		t.Fatalf("zoom: %v", err)
	}
}

func TestFacadeMediaPlayerAndKM(t *testing.T) {
	media := uucs.NewMediaPlayer(uucs.DefaultMediaParams())
	if media.FrameHz() != 24 {
		t.Errorf("media FrameHz = %v", media.FrameHz())
	}
	users, err := uucs.SamplePopulation(6, uucs.DefaultPopulation(), 9)
	if err != nil {
		t.Fatal(err)
	}
	engine := uucs.NewEngine()
	tc := uucs.NewTestcase("m", 1)
	tc.Shape = "ramp"
	tc.Functions[uucs.CPU] = uucs.Ramp(4, 60, 1)
	var runs []*uucs.Run
	for i, u := range users {
		run, err := engine.Execute(tc, media, u, uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, run)
	}
	if curve, err := uucs.KMCurve(runs); err == nil {
		if v, ok := uucs.KMPointC05(curve); ok && v < 0 {
			t.Errorf("km c05 = %v", v)
		}
	}
}

func TestFacadeHarvest(t *testing.T) {
	users, err := uucs.SamplePopulation(3, uucs.DefaultPopulation(), 13)
	if err != nil {
		t.Fatal(err)
	}
	day := uucs.DefaultHarvestDay()
	day.Hours = 1
	r, err := uucs.EvaluateHarvest(func() uucs.HarvestPolicy {
		return harvestScreensaver{}
	}, users, day, uucs.NewEngine(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Users != 3 {
		t.Errorf("users = %d", r.Users)
	}
}

// harvestScreensaver is a local HarvestPolicy proving the interface is
// implementable from outside the internal packages.
type harvestScreensaver struct{}

func (harvestScreensaver) Name() string { return "ext-screensaver" }
func (harvestScreensaver) Level(ctx uucs.HarvestContext) float64 {
	if ctx.UserActive || ctx.IdleFor < 300 {
		return 0
	}
	return 1
}
func (harvestScreensaver) OnFeedback() {}
