module uucs

go 1.22
