// Harvest: the paper's argument, quantified. Conservative frameworks
// (Condor, SETI@Home) borrow only behind the screen saver; the paper
// shows users tolerate far more. This example evaluates four borrowing
// policies over a simulated fleet day — using the same machine, app and
// user models as the controlled study — and reports how much background
// CPU each harvests and how many users it annoys into uninstalling.
package main

import (
	"fmt"
	"log"

	"uucs"
	"uucs/internal/harvest"
)

func main() {
	// Measure the CDFs first (the §5 advice: exploit them).
	res, err := uucs.RunControlledStudy(uucs.DefaultStudyConfig())
	if err != nil {
		log.Fatal(err)
	}
	ceilings := harvest.CeilingsFromStudy(res.DB, 0.05)
	fmt.Println("per-task CPU ceilings at the 5% discomfort level:")
	for task, c := range ceilings {
		fmt.Printf("  %-12s %.2f\n", task, c)
	}
	fmt.Println()

	users, err := uucs.SamplePopulation(40, uucs.DefaultPopulation(), 77)
	if err != nil {
		log.Fatal(err)
	}
	day := harvest.DefaultDay()
	policies := []func() harvest.Policy{
		func() harvest.Policy { return harvest.ScreensaverOnly{Delay: 600, Max: 1} },
		func() harvest.Policy { return harvest.FixedLevel{L: 0.2, Max: 1} },
		func() harvest.Policy { return &harvest.CDFThrottle{Ceilings: ceilings, Max: 1} },
		func() harvest.Policy {
			return &harvest.CDFThrottle{Ceilings: ceilings, Max: 1, Backoff: 0.3, MinWorthwhile: 0.1}
		},
	}
	_, table, err := harvest.Compare(policies, users, day, uucs.NewEngine(), 2004)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(table)
	fmt.Println("=> CDF-guided borrowing harvests active-time CPU the screensaver")
	fmt.Println("   policy leaves on the table, at a bounded, feedback-capped cost")
	fmt.Println("   in user discomfort — the paper's §5 advice, end to end.")
}
