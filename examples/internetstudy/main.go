// Internet-wide study: simulate the paper's §4 deployment — a fleet of
// heterogeneous hosts running UUCS clients against a real server over
// loopback — and compute the aggregated CDFs plus the host-speed effect
// the paper's controlled study could not measure.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"uucs"
)

func main() {
	dir, err := os.MkdirTemp("", "uucs-fleet-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	cfg := uucs.DefaultFleetConfig(dir)
	cfg.Hosts = 60 // the paper had ~100; keep the example brisk
	cfg.RunsPerHost = 10
	cfg.TestcaseCount = 300

	start := time.Now()
	res, err := uucs.RunInternetStudy(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fleet: %d hosts, %d testcases on the server, %d runs collected in %v\n\n",
		len(res.Hosts), cfg.TestcaseCount, len(res.Runs), time.Since(start).Round(time.Millisecond))

	// Aggregated CDF estimates — what the Internet study sharpens.
	for _, r := range []uucs.Resource{uucs.CPU, uucs.Memory, uucs.Disk} {
		cdf := res.DB.ResourceCDF(r)
		fmt.Println(cdf.Render("Internet-study CDF for "+string(r), 56, 9, 0))
	}

	// The raw-host-speed question (paper's question 6).
	se, err := uucs.HostSpeedEffect(res)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(se)
	if se.Slow.Fd > se.Fast.Fd {
		fmt.Println("=> slower machines are discomforted more often at the same contention, as expected")
	}
}
