// Throttle: the paper's advice to implementors (§5) in action. A
// cycle-stealing application measures the study CDFs, sets its borrowing
// throttle to the level that discomforts 5% of users, and additionally
// backs off multiplicatively whenever a user complains — "consider using
// user feedback directly in your application".
package main

import (
	"fmt"
	"log"

	"uucs"
)

func main() {
	// Measure (or load) the discomfort CDFs. Here: a compact controlled
	// study.
	cfg := uucs.DefaultStudyConfig()
	res, err := uucs.RunControlledStudy(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("setting throttles at the 5% discomfort level (the paper's c_0.05):")
	maxima := map[uucs.Resource]float64{uucs.CPU: 10, uucs.Memory: 1, uucs.Disk: 7}
	throttles := map[uucs.Resource]*uucs.Throttle{}
	for _, r := range []uucs.Resource{uucs.CPU, uucs.Memory, uucs.Disk} {
		cdf := res.DB.ResourceCDF(r)
		th, err := uucs.NewThrottle(cdf, 0.05, maxima[r])
		if err != nil {
			log.Fatal(err)
		}
		throttles[r] = th
		fmt.Printf("  %-7s %s\n", r, th)
	}

	// Simulate a day of borrowing on one host with occasional user
	// complaints on the CPU throttle.
	fmt.Println("\na day on one host (CPU throttle, complaints at minute 120 and 121):")
	th := throttles[uucs.CPU]
	for minute := 0; minute <= 600; minute += 30 {
		if minute == 120 {
			th.OnFeedback()
			th.OnFeedback()
			fmt.Printf("  t=%3dmin user complained twice -> backed off to %.2f\n", minute, th.Level())
			continue
		}
		th.OnQuiet(30 * 60)
		fmt.Printf("  t=%3dmin level %.2f (expected discomfort %.1f%%)\n",
			minute, th.Level(), th.ExpectedDiscomfort()*100)
	}

	// The paper's per-task advice: "Know what the user is doing. Their
	// context greatly affects the right throttle setting."
	fmt.Println("\nper-context CPU throttle ceilings (5% target):")
	for _, task := range []uucs.Task{uucs.Word, uucs.Powerpoint, uucs.IE, uucs.Quake} {
		cdf := res.DB.TaskResourceCDF(task, uucs.CPU)
		th, err := uucs.NewThrottle(cdf, 0.05, maxima[uucs.CPU])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s ceiling %.2f\n", task, th.Ceiling())
	}
}
