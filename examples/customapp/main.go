// Custom application model: UUCS is not limited to the paper's four
// tasks. This example defines a new foreground task — a developer's IDE
// with continuous typing, frequent background compiles, and index
// queries — and measures its comfort CDF under CPU borrowing, including
// a realistic host-load trace (the lineage of the paper's CPU exerciser)
// instead of a synthetic ramp.
package main

import (
	"fmt"
	"log"

	"uucs"
	"uucs/internal/analysis"
	"uucs/internal/apps"
	"uucs/internal/hostload"
	"uucs/internal/hostsim"
	"uucs/internal/stats"
	"uucs/internal/testcase"
)

// ide models a developer working in an IDE: fast typing with per-key
// analysis, watched compile-and-run cycles, and occasional whole-index
// searches that churn cold memory.
type ide struct{}

func (ide) Task() testcase.Task { return testcase.Task("ide") }
func (ide) FrameHz() float64    { return 0 }
func (ide) WorkingSet(float64) hostsim.WorkingSet {
	return hostsim.WorkingSet{TotalMB: 180, HotMB: 45}
}
func (ide) Events(duration float64, s *stats.Stream) []apps.Event {
	var evs []apps.Event
	// Typing with per-keystroke syntax analysis (heavier than Word).
	for t := s.Exp(0.25); t < duration; t += s.Exp(0.25) {
		evs = append(evs, apps.Event{
			At: t, Class: apps.Echo, CPU: 0.004 * s.Range(0.7, 1.5),
			HotTouches: 3, Label: "keystroke+analysis",
		})
	}
	// Compile-and-run cycles the developer watches.
	for t := s.Exp(25); t < duration; t += s.Exp(25) {
		evs = append(evs, apps.Event{
			At: t, Class: apps.LoadOp, CPU: 1.2 * s.Range(0.6, 1.8),
			DiskKB: 800 * s.Range(0.5, 1.5), ColdTouches: 20, HotTouches: 8,
			Label: "compile",
		})
	}
	// Index searches: watched ops over cold state.
	for t := s.Exp(12); t < duration; t += s.Exp(12) {
		evs = append(evs, apps.Event{
			At: t, Class: apps.Op, CPU: 0.15 * s.Range(0.7, 1.4),
			ColdTouches: 10, HotTouches: 4, Label: "index-search",
		})
	}
	return evs
}

func main() {
	users, err := uucs.SamplePopulation(33, uucs.DefaultPopulation(), 99)
	if err != nil {
		log.Fatal(err)
	}
	engine := uucs.NewEngine()

	// A synthetic CPU ramp testcase, as in the controlled study...
	ramp := uucs.NewTestcase("ide-ramp", 1)
	ramp.Shape = testcase.ShapeRamp
	ramp.Params = "4.0,120"
	ramp.Functions[uucs.CPU] = uucs.Ramp(4.0, 120, 1)

	// ...and a realistic host-load trace testcase.
	trace, err := hostload.DefaultModel().Testcase("ide-trace", 120, 1, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("host-load trace: mean %.2f, peak %.2f, lag-1 autocorrelation %.2f\n\n",
		trace.Functions[uucs.CPU].Mean(), trace.Functions[uucs.CPU].Max(),
		hostload.Autocorrelation(trace.Functions[uucs.CPU].Values, 1))

	for _, tc := range []*uucs.Testcase{ramp, trace} {
		var runs []*uucs.Run
		for i, u := range users {
			run, err := engine.Execute(tc, ide{}, u, uint64(1000+i))
			if err != nil {
				log.Fatal(err)
			}
			runs = append(runs, run)
		}
		cdf := analysis.CDF(runs)
		fmt.Println(cdf.Render("IDE task under "+tc.ID, 56, 9, 0))
		if c05, ok := cdf.Percentile(0.05); ok {
			fmt.Printf("c_0.05 for the IDE context: %.2f\n", c05)
		} else {
			fmt.Println("fewer than 5% of users reacted in the explored range")
		}
		fmt.Println()
	}
	fmt.Println("=> the same pipeline the paper used, on a task it never studied")
}
