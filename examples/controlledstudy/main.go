// Controlled study: reproduce the paper's §3 experiment — 33 users, four
// foreground tasks, the Figure 8 testcase suite in random order — and
// print every figure and table of the results section.
package main

import (
	"fmt"
	"log"
	"time"

	"uucs"
)

func main() {
	cfg := uucs.DefaultStudyConfig() // 33 users, the paper's machine
	start := time.Now()
	res, err := uucs.RunControlledStudy(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %d runs (%d users x 4 tasks x 8 testcases) in %v\n\n",
		len(res.Runs), len(res.Users), time.Since(start).Round(time.Millisecond))

	// Every figure of the paper's results section.
	fmt.Println(res.RenderAll())

	// Programmatic access to any cell of Figures 14-16.
	table := res.DB.MetricsTable()
	cell, err := uucs.MetricsCell(table, uucs.Quake, uucs.CPU)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Quake/CPU: f_d=%.2f c_a=%.2f (paper: 0.95, 0.64)\n", cell.Fd, cell.Ca)

	// And to the aggregated CDFs of Figures 10-12.
	cdf := res.DB.ResourceCDF(uucs.Memory)
	if c05, ok := cdf.Percentile(0.05); ok {
		fmt.Printf("memory can be borrowed to %.2f of physical RAM while discomforting <5%% of users (paper: 0.33)\n", c05)
	}
}
