// Quickstart: execute a single testcase against a simulated machine,
// foreground application, and user, and inspect the run record — the
// smallest end-to-end use of the UUCS API.
package main

import (
	"fmt"
	"log"

	"uucs"
)

func main() {
	// A testcase that ramps CPU contention from 0 to 2.0 over two
	// minutes (the paper's Figure 4 ramp), at a 1 Hz sample rate.
	tc := uucs.NewTestcase("quickstart-ramp", 1)
	tc.Shape = "ramp"
	tc.Params = "2.0,120"
	tc.Functions[uucs.CPU] = uucs.Ramp(2.0, 120, 1)
	if err := tc.Validate(); err != nil {
		log.Fatal(err)
	}

	// The foreground task: playing Quake III, the study's most
	// resource-intensive application.
	app, err := uucs.NewApp(uucs.Quake)
	if err != nil {
		log.Fatal(err)
	}

	// A handful of synthetic users from the calibrated population; each
	// reacts to the same ramp differently, which is exactly the
	// variation the study's CDFs capture.
	users, err := uucs.SamplePopulation(5, uucs.DefaultPopulation(), 7)
	if err != nil {
		log.Fatal(err)
	}

	// Execute on the controlled study's machine (2.0 GHz P4, 512 MB).
	engine := uucs.NewEngine()
	var last *uucs.Run
	for i, user := range users {
		run, err := engine.Execute(tc, app, user, uint64(100+i))
		if err != nil {
			log.Fatal(err)
		}
		last = run
		if run.Terminated == uucs.Discomfort {
			lvl, _ := run.Level()
			fmt.Printf("user %d: discomfort %3.0fs in, at CPU contention %.2f  (%s)\n",
				user.ID, run.Offset, lvl, user)
		} else {
			fmt.Printf("user %d: exhausted — tolerated the whole ramp     (%s)\n", user.ID, user)
		}
	}

	// Every run carries the paper's per-run data: the last five
	// contention values at the feedback point and the system-monitor
	// recording.
	fmt.Printf("\nlast five contention values of the final run: %.2f\n", last.LastFive[uucs.CPU])
	fmt.Printf("monitor captured %d load samples; final: %+v\n", len(last.Load), last.Load[len(last.Load)-1])
}
